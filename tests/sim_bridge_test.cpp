// Property tests for the sim -> inference bridge: whatever randomized
// sim_config the fuzzer draws, every posterior the adversary computes from
// a delivered message must be a probability distribution, the empirical
// entropy must sit inside its information-theoretic bounds, and every
// reported fraction must be a fraction.

#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/stats/rng.hpp"

namespace anonpath::sim {
namespace {

path_length_distribution random_lengths(std::uint32_t n, stats::rng& gen) {
  const auto cap = static_cast<path_length>(
      std::min<std::uint32_t>(n - 1, 2 + gen.next_below(8)));
  switch (gen.next_below(4)) {
    case 0:
      return path_length_distribution::fixed(
          static_cast<path_length>(gen.next_below(cap + 1)));
    case 1: {
      const auto a = static_cast<path_length>(gen.next_below(cap + 1));
      const auto b = static_cast<path_length>(
          a + gen.next_below(cap - a + 1));
      return path_length_distribution::uniform(a, b);
    }
    case 2:
      return path_length_distribution::geometric(
          0.3 + 0.6 * gen.next_double(), 1, std::max<path_length>(cap, 1));
    default:
      return path_length_distribution::poisson(
          0.5 + 3.0 * gen.next_double(), std::max<path_length>(cap, 1));
  }
}

sim_config random_config(stats::rng& gen) {
  sim_config cfg;
  const auto n = static_cast<std::uint32_t>(8 + gen.next_below(32));
  const auto c = static_cast<std::uint32_t>(1 + gen.next_below(n / 3));
  cfg.sys = {n, c};
  cfg.compromised = spread_compromised(n, c);
  cfg.lengths = random_lengths(n, gen);
  cfg.mode = gen.next_bernoulli(0.25) ? routing_mode::hop_by_hop
                                      : routing_mode::source_routed;
  cfg.forward_prob = 0.5 + 0.4 * gen.next_double();
  cfg.message_count = static_cast<std::uint32_t>(40 + gen.next_below(80));
  cfg.arrival_rate = 20.0 + 200.0 * gen.next_double();
  cfg.faults.drop_probability = gen.next_bernoulli(0.5) ? 0.0 : 0.1 * gen.next_double();
  cfg.seed = gen.next_u64();
  cfg.collect_posteriors = true;
  return cfg;
}

TEST(SimBridge, FuzzedRunsKeepEveryInferenceInvariant) {
  stats::rng gen(20260726);
  int source_routed_runs = 0;
  int posteriors_checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const sim_config cfg = random_config(gen);
    SCOPED_TRACE("trial " + std::to_string(trial) + " N=" +
                 std::to_string(cfg.sys.node_count) + " C=" +
                 std::to_string(cfg.sys.compromised_count) + " " +
                 cfg.lengths.label());
    const sim_report r = run_simulation(cfg);

    // Traffic invariants hold in both routing modes.
    ASSERT_EQ(r.submitted, cfg.message_count);
    ASSERT_LE(r.delivered, r.submitted);
    if (cfg.faults.drop_probability == 0.0) ASSERT_EQ(r.delivered, r.submitted);

    if (cfg.mode != routing_mode::source_routed) {
      ASSERT_TRUE(std::isnan(r.empirical_entropy_bits));
      ASSERT_TRUE(r.posteriors.empty());
      continue;
    }
    if (r.delivered == 0) {  // inference metrics are absent, not zero
      ASSERT_TRUE(std::isnan(r.empirical_entropy_bits));
      ASSERT_TRUE(std::isnan(r.identified_fraction));
      continue;
    }
    ++source_routed_runs;

    // Entropy bound: posteriors are supported on the N-C honest nodes.
    const double ceiling = std::log2(static_cast<double>(
        cfg.sys.node_count - cfg.sys.compromised_count));
    ASSERT_GE(r.empirical_entropy_bits, -1e-12);
    ASSERT_LE(r.empirical_entropy_bits, ceiling + 1e-12);
    ASSERT_GE(r.empirical_entropy_stderr, 0.0);
    ASSERT_GE(r.identified_fraction, 0.0);
    ASSERT_LE(r.identified_fraction, 1.0);
    ASSERT_GE(r.top1_accuracy, 0.0);
    ASSERT_LE(r.top1_accuracy, 1.0);

    // Every delivered message yielded exactly one posterior, and each is a
    // probability distribution that assigns nothing to compromised senders
    // it could have ruled out... unless the sender *was* compromised, in
    // which case it is a point mass.
    ASSERT_EQ(r.posteriors.size(), r.delivered);
    for (const auto& post : r.posteriors) {
      ASSERT_EQ(post.size(), cfg.sys.node_count);
      double total = 0.0;
      for (double p : post) {
        ASSERT_GE(p, -1e-15);
        ASSERT_LE(p, 1.0 + 1e-12);
        ASSERT_TRUE(std::isfinite(p));
        total += p;
      }
      ASSERT_NEAR(total, 1.0, 1e-9);
      ++posteriors_checked;
    }
  }
  // The fuzz loop must actually exercise the inference path.
  EXPECT_GE(source_routed_runs, 10);
  EXPECT_GE(posteriors_checked, 500);
}

TEST(SimBridge, ZeroDeliveryReportsAbsentInferenceMetrics) {
  // With near-certain per-link loss nothing gets through (deterministic
  // under the fixed seed), so the adversary observes nothing; the metrics
  // must be NaN, not 0.0 (0.0 would read as total sender identification).
  sim_config cfg;
  cfg.sys = {15, 1};
  cfg.compromised = {7};
  cfg.lengths = path_length_distribution::uniform(1, 4);
  cfg.message_count = 20;
  cfg.faults.drop_probability = 0.99;
  cfg.collect_posteriors = true;
  const sim_report r = run_simulation(cfg);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_TRUE(std::isnan(r.empirical_entropy_bits));
  EXPECT_TRUE(std::isnan(r.empirical_entropy_stderr));
  EXPECT_TRUE(std::isnan(r.identified_fraction));
  EXPECT_TRUE(std::isnan(r.top1_accuracy));
  EXPECT_TRUE(r.posteriors.empty());
}

TEST(SimBridge, PosteriorCollectionIsOptIn) {
  sim_config cfg;
  cfg.sys = {20, 2};
  cfg.compromised = spread_compromised(20, 2);
  cfg.lengths = path_length_distribution::uniform(1, 5);
  cfg.message_count = 50;
  const sim_report off = run_simulation(cfg);
  EXPECT_TRUE(off.posteriors.empty());
  cfg.collect_posteriors = true;
  const sim_report on = run_simulation(cfg);
  EXPECT_EQ(on.posteriors.size(), on.delivered);
  // The flag must not perturb the run itself.
  EXPECT_EQ(on.delivered, off.delivered);
  EXPECT_EQ(on.empirical_entropy_bits, off.empirical_entropy_bits);
}

TEST(SimBridge, EntropyShrinksAsCompromiseGrows) {
  // Cross-run sanity on the bridge's headline number: more compromised
  // nodes => strictly more information => lower empirical entropy (checked
  // with a wide margin over replicated seeds).
  const auto entropy_at = [](std::uint32_t c) {
    double sum = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim_config cfg;
      cfg.sys = {30, c};
      cfg.compromised = spread_compromised(30, c);
      cfg.lengths = path_length_distribution::uniform(1, 6);
      cfg.message_count = 300;
      cfg.seed = seed;
      sum += run_simulation(cfg).empirical_entropy_bits;
    }
    return sum / 3.0;
  };
  const double h1 = entropy_at(1);
  const double h6 = entropy_at(6);
  const double h12 = entropy_at(12);
  EXPECT_GT(h1, h6);
  EXPECT_GT(h6, h12);
}

}  // namespace
}  // namespace anonpath::sim
