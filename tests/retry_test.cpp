// Retransmission-with-backoff: the sim::retry_policy recovery path and its
// adversary-side accounting. Pins (a) the inertness of a policy that never
// fires, (b) determinism, (c) reliability monotone in the retry budget,
// (d) retransmissions being genuinely fused into per-message posteriors,
// and (e) the trace pipeline carrying attempts bit-exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"

namespace anonpath {
namespace {

sim::sim_config lossy_config(std::uint64_t seed, double drop,
                             std::uint32_t retries) {
  sim::sim_config cfg;
  cfg.sys = {24, 2};
  cfg.compromised = spread_compromised(24, 2);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 500;
  cfg.arrival_rate = 100.0;
  cfg.seed = seed;
  cfg.faults.drop_probability = drop;
  cfg.retry.max_retries = retries;
  cfg.retry.timeout = 0.3;
  return cfg;
}

TEST(Retry, PolicyThatNeverFiresIsInert) {
  // Lossless fabric, timeout far beyond every delivery: the timers all find
  // their message delivered, no attempt is ever injected, and the report
  // matches the retry-free run field for field (the retry rng stream is
  // split unconditionally, so enabling the policy shifts nothing).
  sim::sim_config off = lossy_config(5, 0.0, 0);
  sim::sim_config armed = lossy_config(5, 0.0, 4);
  armed.retry.timeout = 1e6;
  armed.retry.max_timeout = 1e6;

  const auto a = sim::run_simulation(off);
  const auto b = sim::run_simulation(armed);
  EXPECT_EQ(b.retransmissions, 0u);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_EQ(a.hop_histogram, b.hop_histogram);
  EXPECT_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_EQ(a.identified_fraction, b.identified_fraction);
  EXPECT_EQ(a.top1_accuracy, b.top1_accuracy);
}

TEST(Retry, DeterministicUnderSeed) {
  const sim::sim_config cfg = lossy_config(9, 0.25, 3);
  const auto a = sim::run_simulation(cfg);
  const auto b = sim::run_simulation(cfg);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_EQ(a.identified_fraction, b.identified_fraction);
}

TEST(Retry, DeliveryMonotoneInBudget) {
  // Mean delivered fraction over several seeds must climb with the retry
  // budget — that is the entire point of the policy. Averaging smooths the
  // per-seed rng divergence between budgets.
  double prev = -1.0;
  for (std::uint32_t budget : {0u, 1u, 2u, 4u}) {
    double delivered = 0.0, submitted = 0.0;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      const auto r = sim::run_simulation(lossy_config(seed, 0.2, budget));
      delivered += static_cast<double>(r.delivered);
      submitted += static_cast<double>(r.submitted);
    }
    const double fraction = delivered / submitted;
    EXPECT_GT(fraction, prev) << "budget " << budget;
    prev = fraction;
  }
  EXPECT_GT(prev, 0.85);  // 4 retries at drop 0.2 recovers most messages
}

TEST(Retry, RetransmissionsGrowWithLoss) {
  const auto mild = sim::run_simulation(lossy_config(3, 0.1, 3));
  const auto harsh = sim::run_simulation(lossy_config(3, 0.45, 3));
  EXPECT_GT(mild.retransmissions, 0u);
  EXPECT_GT(harsh.retransmissions, mild.retransmissions);
}

TEST(Retry, FusionSharpensThePosteriorOnAverage) {
  // The anonymity cost, measured the way an adversary experiences it:
  // uncertainty across ALL messages, where an unobserved message costs the
  // prior log2(N - C) bits. More attempts => more observations fused =>
  // the all-message entropy must not grow.
  const auto all_message_entropy = [](std::uint32_t budget) {
    double bits = 0.0;
    std::uint64_t messages = 0;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
      sim::sim_config cfg = lossy_config(seed, 0.3, budget);
      cfg.collect_posteriors = true;
      const auto r = sim::run_simulation(cfg);
      const double prior = std::log2(
          static_cast<double>(cfg.sys.node_count - cfg.sys.compromised_count));
      double scored_bits = 0.0;
      for (const auto& post : r.posteriors)
        for (double p : post)
          if (p > 0.0) scored_bits -= p * std::log2(p);
      bits += scored_bits +
              prior * static_cast<double>(cfg.message_count -
                                          r.posteriors.size());
      messages += cfg.message_count;
    }
    return bits / static_cast<double>(messages);
  };
  const double h0 = all_message_entropy(0);
  const double h2 = all_message_entropy(2);
  const double h4 = all_message_entropy(4);
  EXPECT_LE(h2, h0);
  EXPECT_LE(h4, h2);
  EXPECT_LT(h4, h0);  // and strictly better overall
}

TEST(Retry, TraceRoundTripCarriesAttempts) {
  const sim::sim_config cfg = lossy_config(17, 0.3, 2);
  const sim::sim_trace trace = sim::capture_trace(cfg);
  EXPECT_FALSE(trace.attempts.empty());
  for (const auto& [attempt, original] : trace.attempts) {
    EXPECT_GT(attempt, cfg.message_count);
    EXPECT_GE(original, 1u);
    EXPECT_LE(original, cfg.message_count);
  }

  std::ostringstream first;
  sim::write_trace(trace, first);
  std::istringstream is(first.str());
  const sim::sim_trace parsed = sim::read_trace(is);
  EXPECT_EQ(parsed.attempts, trace.attempts);
  EXPECT_EQ(parsed.config.retry, cfg.retry);
  EXPECT_EQ(parsed.config.faults, cfg.faults);
  std::ostringstream second;
  sim::write_trace(parsed, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Retry, ReplayMatchesInlineRun) {
  const sim::sim_config cfg = lossy_config(23, 0.35, 3);
  const auto inline_run = sim::run_simulation(cfg);
  const auto replayed = sim::replay_trace(sim::capture_trace(cfg));
  EXPECT_EQ(inline_run.retransmissions, replayed.retransmissions);
  EXPECT_EQ(inline_run.delivered, replayed.delivered);
  EXPECT_EQ(inline_run.empirical_entropy_bits,
            replayed.empirical_entropy_bits);
  EXPECT_EQ(inline_run.identified_fraction, replayed.identified_fraction);
  EXPECT_EQ(inline_run.top1_accuracy, replayed.top1_accuracy);
}

}  // namespace
}  // namespace anonpath
