#include "src/anonymity/cyclic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/brute_force.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(CyclicBruteForce, ProbabilitiesSumToOne) {
  const system_params sys{6, 1};
  const cyclic_brute_force_analyzer bf(sys, {2},
                                       path_length_distribution::uniform(0, 4));
  EXPECT_NEAR(bf.total_probability(), 1.0, 1e-12);
}

TEST(CyclicBruteForce, LengthZeroAndOneMatchSimplePaths) {
  // No revisit is possible with fewer than two hops, so the two path models
  // coincide exactly there.
  const system_params sys{7, 1};
  for (path_length l : {0u, 1u}) {
    const auto d = path_length_distribution::fixed(l);
    const cyclic_brute_force_analyzer cyc(sys, {3}, d);
    const brute_force_analyzer simple(sys, {3}, d);
    EXPECT_NEAR(cyc.anonymity_degree(), simple.anonymity_degree(), 1e-12)
        << "l=" << l;
  }
}

TEST(CyclicBruteForce, DivergesFromSimpleAtLengthTwo) {
  // From l=2 the walk S -> a -> S -> R exists: the receiver's predecessor
  // can *be* the sender, which changes the posterior structure.
  const system_params sys{6, 1};
  const auto d = path_length_distribution::fixed(2);
  const cyclic_brute_force_analyzer cyc(sys, {1}, d);
  const brute_force_analyzer simple(sys, {1}, d);
  EXPECT_GT(std::fabs(cyc.anonymity_degree() - simple.anonymity_degree()),
            1e-6);
}

TEST(CyclicBruteForce, SenderCanBeReceiverPredecessor) {
  // Verify the defining event exists: an observation whose receiver
  // predecessor carries positive posterior as the sender, under a
  // fixed-length-2 strategy (impossible with simple paths).
  const system_params sys{5, 1};
  const auto d = path_length_distribution::fixed(2);
  const cyclic_brute_force_analyzer cyc(sys, {4}, d);
  bool found = false;
  for (const auto& e : cyc.events()) {
    const node_id v = e.obs.receiver_predecessor;
    if (!e.obs.origin && e.obs.reports.empty() && e.posterior[v] > 1e-9) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CyclicBruteForce, CompromisedNodeCanReportTwice) {
  // A walk visiting the compromised node twice must yield a two-report
  // observation — the multi-visit case simple paths never produce.
  const system_params sys{5, 1};
  const auto d = path_length_distribution::fixed(4);
  const cyclic_brute_force_analyzer cyc(sys, {2}, d);
  bool found = false;
  for (const auto& e : cyc.events()) {
    if (e.obs.reports.size() >= 2 &&
        e.obs.reports[0].reporter == e.obs.reports[1].reporter) {
      found = true;
      EXPECT_GT(e.probability, 0.0);
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CyclicBruteForce, DirectSendStillFullyExposed) {
  const system_params sys{6, 1};
  const cyclic_brute_force_analyzer cyc(sys, {0},
                                        path_length_distribution::fixed(0));
  EXPECT_NEAR(cyc.anonymity_degree(), 0.0, 1e-12);
}

TEST(CyclicBruteForce, BoundedByLog2N) {
  const system_params sys{6, 1};
  for (path_length l : {1u, 2u, 3u, 4u, 5u}) {
    const cyclic_brute_force_analyzer cyc(sys, {3},
                                          path_length_distribution::fixed(l));
    EXPECT_LT(cyc.anonymity_degree(), std::log2(6.0)) << "l=" << l;
    EXPECT_GT(cyc.anonymity_degree(), 0.0) << "l=" << l;
  }
}

TEST(CyclicBruteForce, CyclesBeatSimplePathsAtModerateLengths) {
  // With cycles the sender stays in the candidate pool of every event
  // (it can reappear anywhere), so for l >= 2 complicated paths yield at
  // least as much anonymity on small systems. Documented ablation
  // (bench/ext_cyclic); asserted here for a grid of cases.
  const system_params sys{6, 1};
  for (path_length l : {2u, 3u, 4u}) {
    const auto d = path_length_distribution::fixed(l);
    const cyclic_brute_force_analyzer cyc(sys, {1}, d);
    const brute_force_analyzer simple(sys, {1}, d);
    EXPECT_GE(cyc.anonymity_degree(), simple.anonymity_degree() - 1e-9)
        << "l=" << l;
  }
}

TEST(CyclicBruteForce, GuardsCost) {
  const auto d = path_length_distribution::fixed(2);
  EXPECT_THROW(cyclic_brute_force_analyzer(system_params{9, 1}, {0}, d),
               contract_violation);
  EXPECT_THROW(cyclic_brute_force_analyzer(system_params{6, 1}, {0},
                                           path_length_distribution::fixed(9)),
               contract_violation);
}

}  // namespace
}  // namespace anonpath
