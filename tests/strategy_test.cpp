#include "src/anonymity/strategy.hpp"

#include <gtest/gtest.h>

#include "src/anonymity/analytic.hpp"

namespace anonpath {
namespace {

TEST(Protocols, AnonymizerIsSingleHop) {
  const auto p = protocols::anonymizer();
  EXPECT_EQ(p.name, "Anonymizer");
  EXPECT_DOUBLE_EQ(p.lengths.pmf(1), 1.0);
  EXPECT_EQ(p.mode, routing_mode::source_routed);
}

TEST(Protocols, FreedomIsFixedThree) {
  const auto p = protocols::freedom();
  EXPECT_DOUBLE_EQ(p.lengths.pmf(3), 1.0);
  EXPECT_DOUBLE_EQ(p.lengths.mean(), 3.0);
}

TEST(Protocols, OnionRoutingOneIsFixedFive) {
  const auto p = protocols::onion_routing_v1();
  EXPECT_DOUBLE_EQ(p.lengths.pmf(5), 1.0);
}

TEST(Protocols, PipeNetIsThreeOrFour) {
  const auto p = protocols::pipenet();
  EXPECT_DOUBLE_EQ(p.lengths.pmf(3), 0.5);
  EXPECT_DOUBLE_EQ(p.lengths.pmf(4), 0.5);
  EXPECT_DOUBLE_EQ(p.lengths.mean(), 3.5);
}

TEST(Protocols, CrowdsHasGeometricTailAndMinOne) {
  const auto p = protocols::crowds(0.75, 99);
  EXPECT_EQ(p.mode, routing_mode::hop_by_hop);
  EXPECT_DOUBLE_EQ(p.lengths.pmf(0), 0.0);
  EXPECT_GT(p.lengths.pmf(1), 0.0);
  EXPECT_NEAR(p.lengths.pmf(2) / p.lengths.pmf(1), 0.75, 1e-9);
  EXPECT_NEAR(p.lengths.mean(), 4.0, 1e-6);  // 1/(1-pf)
}

TEST(Protocols, CrowdsVariantsShareLengthLaw) {
  const auto crowds = protocols::crowds(0.8, 50);
  const auto orii = protocols::onion_routing_v2(0.8, 50);
  const auto hordes = protocols::hordes(0.8, 50);
  for (path_length l = 0; l <= 50; ++l) {
    EXPECT_DOUBLE_EQ(crowds.lengths.pmf(l), orii.lengths.pmf(l));
    EXPECT_DOUBLE_EQ(crowds.lengths.pmf(l), hordes.lengths.pmf(l));
  }
}

TEST(Protocols, SurveyCoversAllEightSystems) {
  const auto all = protocols::survey(99);
  EXPECT_EQ(all.size(), 8u);
  for (const auto& p : all) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_LE(p.lengths.max_length(), 99u);
  }
}

TEST(Protocols, SurveyScoresAreFiniteAndBounded) {
  const system_params sys{100, 1};
  for (const auto& p : protocols::survey(99)) {
    const double h = anonymity_degree(sys, p.lengths);
    EXPECT_GT(h, 6.0) << p.name;
    EXPECT_LT(h, max_anonymity_degree(sys)) << p.name;
  }
}

TEST(Protocols, FreedomUnderperformsCrowdsAtSimilarCost) {
  // The paper's point, as a regression test: Freedom's F(3) sits at the
  // short-path dip; Crowds' coin with a *similar* mean does better.
  const system_params sys{100, 1};
  const double freedom = anonymity_degree(sys, protocols::freedom().lengths);
  const double crowds =
      anonymity_degree(sys, protocols::crowds(2.0 / 3.0, 99).lengths);  // mean 3
  EXPECT_GT(crowds, freedom + 0.01);
}

}  // namespace
}  // namespace anonpath
