// Statistical goodness-of-fit layer: chi-square tests pinning (a) the
// simulator's realized-hops histogram and (b) the path samplers' output to
// the configured path_length_distribution, at three preset strategies.
// Seeds are fixed and chosen so every test is deterministic and passes with
// a comfortable margin; a change that skews sampling or routing will move
// the statistic far past the rejection threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/anonymity/path_sampler.hpp"
#include "src/net/topology.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/chi_square.hpp"
#include "src/stats/rng.hpp"
#include "src/workload/population.hpp"

namespace anonpath {
namespace {

struct preset {
  const char* name;
  path_length_distribution lengths;
};

std::vector<preset> presets() {
  return {
      {"U(1,8)", path_length_distribution::uniform(1, 8)},
      {"Geom(0.8,1..12)", path_length_distribution::geometric(0.8, 1, 12)},
      {"Poisson(5,14)", path_length_distribution::poisson(5.0, 14)},
  };
}

/// Chi-square p-value of observed counts against the distribution's dense
/// pmf (histogram padded to the support size).
double gof_p_value(std::vector<std::uint64_t> hist,
                   const path_length_distribution& d) {
  const auto& pmf = d.dense_pmf();
  if (hist.size() < pmf.size()) hist.resize(pmf.size(), 0);
  EXPECT_EQ(hist.size(), pmf.size()) << "observed support exceeds the pmf's";
  return stats::chi_square_goodness_of_fit(hist, pmf).p_value;
}

TEST(StatGoF, SimulatorRealizedHopsMatchConfiguredDistribution) {
  // Source-routed, lossless: every delivered message realizes exactly its
  // sampled length, so the hop histogram is a direct sample of the
  // configured distribution.
  std::uint64_t seed = 20;
  for (const preset& p : presets()) {
    sim::sim_config cfg;
    cfg.sys = {40, 1};
    cfg.compromised = {0};
    cfg.lengths = p.lengths;
    cfg.message_count = 3000;
    cfg.arrival_rate = 400.0;
    cfg.seed = ++seed;
    const auto report = sim::run_simulation(cfg);
    ASSERT_EQ(report.delivered, cfg.message_count) << p.name;
    std::uint64_t total = 0;
    for (std::uint64_t c : report.hop_histogram) total += c;
    EXPECT_EQ(total, report.delivered);
    const double pv = gof_p_value(report.hop_histogram, p.lengths);
    EXPECT_GT(pv, 0.01) << p.name << ": simulator hops diverge from strategy";
  }
}

TEST(StatGoF, RouteSamplerLengthsMatchConfiguredDistribution) {
  std::uint64_t seed = 50;
  for (const preset& p : presets()) {
    route_sampler sampler(40, p.lengths, path_model::simple);
    stats::rng gen(++seed);
    std::vector<std::uint64_t> hist(p.lengths.max_length() + 1, 0);
    for (int i = 0; i < 20000; ++i) {
      const route& r = sampler.next(gen);
      ASSERT_LT(r.length(), hist.size() + 1);
      ++hist[r.length()];
    }
    const double pv = gof_p_value(std::move(hist), p.lengths);
    EXPECT_GT(pv, 0.01) << p.name << ": route_sampler lengths diverge";
  }
}

TEST(StatGoF, SampleRouteLengthsMatchConfiguredDistribution) {
  // The per-call sampler (the simulator's own draw path) against the same
  // presets: both samplers must agree with the strategy, not just one.
  std::uint64_t seed = 80;
  for (const preset& p : presets()) {
    stats::rng gen(++seed);
    std::vector<std::uint64_t> hist(p.lengths.max_length() + 1, 0);
    for (int i = 0; i < 20000; ++i)
      ++hist[sample_route(40, p.lengths, path_model::simple, gen).length()];
    const double pv = gof_p_value(std::move(hist), p.lengths);
    EXPECT_GT(pv, 0.01) << p.name << ": sample_route lengths diverge";
  }
}

TEST(StatGoF, RouteSamplerSendersAreUniform) {
  const std::uint32_t n = 25;
  route_sampler sampler(n, path_length_distribution::uniform(1, 6),
                        path_model::simple);
  stats::rng gen(7);
  std::vector<std::uint64_t> hist(n, 0);
  for (int i = 0; i < 25000; ++i) ++hist[sampler.next(gen).sender];
  const std::vector<double> uniform(n, 1.0 / n);
  const auto r = stats::chi_square_goodness_of_fit(hist, uniform);
  EXPECT_GT(r.p_value, 0.01) << "senders are not uniform over V";
}

/// Chi-square p-value of observed next-hop counts (indexed like
/// topo.neighbors(from)) against the configured transition distribution.
double neighbor_gof_p_value(const net::topology& topo, node_id from,
                            const std::vector<std::uint64_t>& counts) {
  const auto& w = topo.neighbor_weights(from);
  std::vector<double> expected(w.size());
  for (std::size_t i = 0; i < w.size(); ++i)
    expected[i] = w[i] / topo.total_weight(from);
  return stats::chi_square_goodness_of_fit(counts, expected).p_value;
}

TEST(StatGoF, NeighborChoiceFrequenciesMatchEdgeWeights) {
  // Three topology presets; sample_neighbor's draw frequencies must match
  // the configured edge weights at every probed node.
  struct topo_preset {
    const char* name;
    net::topology topo;
  };
  const std::vector<topo_preset> presets{
      {"ring(3)", net::topology::ring(20, 3)},
      {"tiered(3)", net::topology::tiered(21, 3)},
      {"trust(0.6)", net::topology::trust_weighted(16, 0.6)},
  };
  std::uint64_t seed = 110;
  for (const auto& p : presets) {
    stats::rng gen(++seed);
    for (const node_id from : {node_id{0}, node_id{7}, node_id{13}}) {
      const auto& nbr = p.topo.neighbors(from);
      std::vector<std::uint64_t> counts(nbr.size(), 0);
      for (int i = 0; i < 20000; ++i) {
        const node_id v = p.topo.sample_neighbor(from, gen);
        const auto it = std::lower_bound(nbr.begin(), nbr.end(), v);
        ASSERT_TRUE(it != nbr.end() && *it == v) << p.name;
        ++counts[static_cast<std::size_t>(it - nbr.begin())];
      }
      EXPECT_GT(neighbor_gof_p_value(p.topo, from, counts), 0.01)
          << p.name << ": neighbor draw diverges from edge weights at node "
          << from;
    }
  }
}

TEST(StatGoF, WalkRouteFirstHopsMatchEdgeWeights) {
  // The full route sampler (the simulator's own draw path on restricted
  // graphs) must route its first hop per the weights too, not just the
  // bare neighbor draw.
  const net::topology topo = net::topology::trust_weighted(14, 0.5);
  const node_id sender = 5;
  const auto& nbr = topo.neighbors(sender);
  stats::rng gen(131);
  std::vector<std::uint64_t> counts(nbr.size(), 0);
  for (int i = 0; i < 20000; ++i) {
    const route r = sample_topology_route(topo, sender, 3, gen);
    const auto it = std::lower_bound(nbr.begin(), nbr.end(), r.hops.front());
    ASSERT_TRUE(it != nbr.end());
    ++counts[static_cast<std::size_t>(it - nbr.begin())];
  }
  EXPECT_GT(neighbor_gof_p_value(topo, sender, counts), 0.01);
}

TEST(StatGoF, RejectsMiscalibratedEdgeWeights) {
  // Negative control: trust-weighted draws scored against the uniform
  // hypothesis must be rejected decisively.
  const net::topology topo = net::topology::trust_weighted(16, 0.6);
  stats::rng gen(149);
  const node_id from = 0;
  const auto& nbr = topo.neighbors(from);
  std::vector<std::uint64_t> counts(nbr.size(), 0);
  for (int i = 0; i < 20000; ++i) {
    const node_id v = topo.sample_neighbor(from, gen);
    const auto it = std::lower_bound(nbr.begin(), nbr.end(), v);
    ++counts[static_cast<std::size_t>(it - nbr.begin())];
  }
  const std::vector<double> uniform(nbr.size(), 1.0 / nbr.size());
  EXPECT_LT(stats::chi_square_goodness_of_fit(counts, uniform).p_value, 1e-6);
}

/// Histograms the *background* emissions of a population workload
/// (persistent-pair prefix messages excluded via the ground-truth prefix),
/// either senders or receivers.
std::vector<std::uint64_t> background_histogram(
    const workload::population& pop, bool senders, std::uint32_t bins) {
  std::vector<std::uint64_t> hist(bins, 0);
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r) {
    const workload::round_batch b = pop.round(r);
    for (std::size_t i = b.active_pairs.size(); i < b.senders.size(); ++i)
      ++hist[senders ? b.senders[i] : b.receivers[i]];
  }
  return hist;
}

TEST(StatGoF, WorkloadEmissionMatchesConfiguredLaws) {
  // Background senders and receivers against uniform and Zipf laws, per
  // configured law — the population model's own emission calibration.
  struct law_preset {
    const char* name;
    workload::popularity_law law;
  };
  const std::vector<law_preset> laws{
      {"uniform", {workload::popularity_kind::uniform, 1.0}},
      {"zipf(1.0)", {workload::popularity_kind::zipf, 1.0}},
      {"zipf(1.6)", {workload::popularity_kind::zipf, 1.6}},
  };
  std::uint64_t seed = 170;
  for (const law_preset& p : laws) {
    workload::population_config cfg;
    cfg.seed = ++seed;
    cfg.user_count = 40;
    cfg.receiver_count = 30;
    cfg.round_count = 800;
    cfg.persistent_pairs = 2;
    cfg.round_size = 25;
    cfg.sender_law = p.law;
    cfg.receiver_law = p.law;
    const workload::population pop(cfg);
    const auto sender_pmf = workload::popularity_pmf(p.law, cfg.user_count);
    const auto recv_pmf = workload::popularity_pmf(p.law, cfg.receiver_count);
    const auto sender_hist = background_histogram(pop, true, cfg.user_count);
    const auto recv_hist =
        background_histogram(pop, false, cfg.receiver_count);
    EXPECT_GT(
        stats::chi_square_goodness_of_fit(sender_hist, sender_pmf).p_value,
        0.01)
        << p.name << ": background senders diverge from the configured law";
    EXPECT_GT(stats::chi_square_goodness_of_fit(recv_hist, recv_pmf).p_value,
              0.01)
        << p.name << ": background receivers diverge from the configured law";
  }
}

TEST(StatGoF, RejectsAMiscalibratedWorkloadLaw) {
  // Negative control: Zipf(1.2) receiver draws scored against the uniform
  // hypothesis must be rejected decisively.
  workload::population_config cfg;
  cfg.seed = 199;
  cfg.user_count = 40;
  cfg.receiver_count = 30;
  cfg.round_count = 800;
  cfg.persistent_pairs = 0;
  cfg.round_size = 25;
  cfg.receiver_law = {workload::popularity_kind::zipf, 1.2};
  const workload::population pop(cfg);
  const auto hist = background_histogram(pop, false, cfg.receiver_count);
  const std::vector<double> uniform(cfg.receiver_count,
                                    1.0 / cfg.receiver_count);
  EXPECT_LT(stats::chi_square_goodness_of_fit(hist, uniform).p_value, 1e-6);
}

TEST(StatGoF, RejectsAMiscalibratedDistribution) {
  // Negative control: the same machinery must reject a wrong hypothesis —
  // U(1,8) samples scored against Geom(0.8)'s pmf on the same support.
  route_sampler sampler(40, path_length_distribution::uniform(1, 8),
                        path_model::simple);
  stats::rng gen(3);
  std::vector<std::uint64_t> hist(9, 0);
  for (int i = 0; i < 20000; ++i) ++hist[sampler.next(gen).length()];
  const auto wrong_dist = path_length_distribution::geometric(0.8, 1, 8);
  const auto r =
      stats::chi_square_goodness_of_fit(hist, wrong_dist.dense_pmf());
  EXPECT_LT(r.p_value, 1e-6);
}

}  // namespace
}  // namespace anonpath
