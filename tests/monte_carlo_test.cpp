#include "src/anonymity/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/brute_force.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(MonteCarlo, DeterministicUnderSeed) {
  const system_params sys{30, 2};
  const auto d = path_length_distribution::uniform(1, 8);
  const auto a = estimate_anonymity_degree(sys, {3, 17}, d, 2000, 99);
  const auto b = estimate_anonymity_degree(sys, {3, 17}, d, 2000, 99);
  EXPECT_DOUBLE_EQ(a.degree, b.degree);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
}

TEST(MonteCarlo, MatchesAnalyticC1WithinCI) {
  const system_params sys{50, 1};
  for (const auto& d :
       {path_length_distribution::fixed(5),
        path_length_distribution::uniform(0, 20),
        path_length_distribution::geometric(0.7, 1, 49)}) {
    const double exact = anonymity_degree(sys, d);
    const auto est = estimate_anonymity_degree(sys, {7}, d, 20000, 4242);
    EXPECT_NEAR(est.degree, exact, 5.0 * est.std_error + 1e-6) << d.label();
  }
}

TEST(MonteCarlo, MatchesBruteForceSmallSystems) {
  // C=2 and C=3: brute force is ground truth; MC must converge to it.
  const system_params sys2{7, 2};
  const auto d = path_length_distribution::uniform(0, 4);
  const brute_force_analyzer bf2(sys2, {1, 4}, d);
  const auto est2 = estimate_anonymity_degree(sys2, {1, 4}, d, 30000, 1);
  EXPECT_NEAR(est2.degree, bf2.anonymity_degree(), 5.0 * est2.std_error + 1e-6);

  const system_params sys3{7, 3};
  const brute_force_analyzer bf3(sys3, {1, 4, 6}, d);
  const auto est3 = estimate_anonymity_degree(sys3, {1, 4, 6}, d, 30000, 2);
  EXPECT_NEAR(est3.degree, bf3.anonymity_degree(), 5.0 * est3.std_error + 1e-6);
}

TEST(MonteCarlo, MoreCompromisedMeansLessAnonymity) {
  const auto d = path_length_distribution::uniform(1, 10);
  double prev = std::log2(40.0);
  for (std::uint32_t c = 1; c <= 8; c += 3) {
    std::vector<node_id> comp;
    for (std::uint32_t i = 0; i < c; ++i) comp.push_back(i * 4);
    const system_params sys{40, c};
    const auto est = estimate_anonymity_degree(sys, comp, d, 8000, 5 + c);
    EXPECT_LT(est.degree, prev + 0.05) << "C=" << c;
    prev = est.degree;
  }
}

TEST(MonteCarlo, ErrorShrinksWithSamples) {
  const system_params sys{30, 2};
  const auto d = path_length_distribution::uniform(1, 8);
  const auto small = estimate_anonymity_degree(sys, {3, 17}, d, 500, 11);
  const auto large = estimate_anonymity_degree(sys, {3, 17}, d, 20000, 11);
  EXPECT_GT(small.std_error, large.std_error);
}

TEST(MonteCarlo, RejectsZeroSamples) {
  const system_params sys{10, 1};
  EXPECT_THROW((void)estimate_anonymity_degree(
                   sys, {0}, path_length_distribution::fixed(1), 0, 1),
               contract_violation);
}

}  // namespace
}  // namespace anonpath
