// Golden-file regression for the session/attack axes: a 2-population x
// 2-attack campaign CSV pinned byte for byte (any drift in the destination
// plan, round batching, attack scoring, aggregation, or the conditional
// session columns trips it), the thread-count invariance of a session
// campaign, and the no-session CSV's byte-compatibility contract.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "src/sim/campaign.hpp"

namespace anonpath::sim {
namespace {

/// The pinned grid: populations {12, 24} x attacks {sda, sequential_bayes}.
campaign_grid golden_grid() {
  campaign_grid grid;
  grid.node_counts = {20};
  grid.compromised_counts = {2};
  grid.lengths = {path_length_distribution::uniform(1, 4)};
  grid.message_count = 600;
  grid.populations = {12, 24};
  grid.session_rounds = {30};
  grid.attacks = {attack::attack_kind::sda,
                  attack::attack_kind::sequential_bayes};
  grid.session_receiver_law = {workload::popularity_kind::zipf, 1.0};
  return grid;
}

TEST(AttackGolden, CampaignCsvMatchesCommittedFixture) {
  campaign_config cfg;
  cfg.replicas = 2;
  cfg.master_seed = 17;
  cfg.threads = 2;
  const auto result = run_campaign(golden_grid(), cfg);
  ASSERT_EQ(result.cells.size(), 4u);

  std::ostringstream os;
  write_csv(result, os);

  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/campaign_attack.csv";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden fixture " << path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(os.str(), want.str())
      << "session campaign drifted from the committed golden; if the "
         "change is intended, regenerate tests/golden/campaign_attack.csv";
}

TEST(AttackGolden, SessionCampaignIsThreadCountInvariant) {
  campaign_config one;
  one.replicas = 2;
  one.master_seed = 29;
  one.threads = 1;
  campaign_config eight = one;
  eight.threads = 8;
  std::ostringstream a, b;
  write_csv(run_campaign(golden_grid(), one), a);
  write_csv(run_campaign(golden_grid(), eight), b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(AttackGolden, SessionlessCsvKeepsHistoricalColumns) {
  // The conditional-column contract: a grid that never enables sessions
  // renders the pre-session header (no attack columns), so pre-PR
  // consumers and the committed topology golden stay byte-identical.
  campaign_grid grid;
  grid.node_counts = {12};
  grid.compromised_counts = {1};
  grid.lengths = {path_length_distribution::fixed(2)};
  grid.message_count = 60;
  campaign_config cfg;
  cfg.replicas = 1;
  std::ostringstream os;
  write_csv(run_campaign(grid, cfg), os);
  const std::string header = os.str().substr(0, os.str().find('\n'));
  EXPECT_EQ(header.find("population"), std::string::npos);
  EXPECT_EQ(header.find("attack"), std::string::npos);
  EXPECT_EQ(header.substr(header.size() - 25), "top1_accuracy,top1_stderr");
}

TEST(AttackGolden, IncoherentSessionCellsAreSkipped) {
  // population without rounds (and vice versa), attacks without sessions,
  // and session x hop-by-hop are all filtered at expansion, loudly visible
  // as skipped cells rather than invalid runs.
  campaign_grid grid;
  grid.node_counts = {12};
  grid.compromised_counts = {1};
  grid.lengths = {path_length_distribution::fixed(2)};
  grid.message_count = 60;
  grid.populations = {0, 10};
  grid.session_rounds = {0, 20};
  grid.attacks = {attack::attack_kind::none, attack::attack_kind::sda};
  // Coherent: (0,0,none), (10,20,none), (10,20,sda). Everything else skips.
  EXPECT_EQ(expand_grid(grid).size(), 3u);

  grid.modes = {routing_mode::hop_by_hop};
  // Hop-by-hop keeps only the session-less cell.
  EXPECT_EQ(expand_grid(grid).size(), 1u);
}

}  // namespace
}  // namespace anonpath::sim
