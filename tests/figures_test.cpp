// Asserts the paper's Figure 3-6 claims on the series the benches print —
// the acceptance tests of the reproduction (EXPERIMENTS.md cross-references
// these).

#include "src/repro/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/analytic.hpp"

namespace anonpath::repro {
namespace {

constexpr system_params sys{100, 1};

TEST(Fig3a, PeaksAt51ThenDecreases) {
  const auto f = fig3a(sys);
  ASSERT_EQ(f.series.size(), 1u);
  const auto peak = series_max(f.series[0]);
  EXPECT_DOUBLE_EQ(peak.x, 51.0);
  EXPECT_NEAR(peak.y, 6.5384, 5e-4);
  EXPECT_LT(series_value_at(f.series[0], 99), peak.y);
}

TEST(Fig3a, StartsAtZeroAnonymity) {
  const auto f = fig3a(sys);
  EXPECT_DOUBLE_EQ(series_value_at(f.series[0], 0), 0.0);
}

TEST(Fig3a, ValuesInPaperAxisRange) {
  // The published panel spans ~[6.48, 6.54] for l >= 1.
  const auto f = fig3a(sys);
  for (const auto& p : f.series[0].points) {
    if (p.x < 1) continue;
    EXPECT_GT(p.y, 6.47);
    EXPECT_LT(p.y, 6.55);
  }
}

TEST(Fig3b, ShortPathEffectOrdering) {
  const auto f = fig3b(sys);
  const auto& s = f.series[0];
  const double h1 = series_value_at(s, 1);
  const double h2 = series_value_at(s, 2);
  const double h3 = series_value_at(s, 3);
  const double h4 = series_value_at(s, 4);
  EXPECT_NEAR(h1, h2, 1e-12);  // paper: lengths 1 and 2 identical
  EXPECT_LT(h3, h2);           // paper: length 3 slightly worse
  EXPECT_GT(h4, h1);           // paper: length 4 above all shorter
  EXPECT_NEAR(h1, 6.4824, 5e-4);
  EXPECT_NEAR(h4, 6.5020, 5e-4);
}

TEST(Fig4a, SmallLowerBoundsRiseWithWidth) {
  // For A in {4,6,10}: H* increases with L over the plotted range, and at
  // equal width the larger lower bound wins.
  const auto f = fig4(sys, 'a');
  ASSERT_EQ(f.series.size(), 3u);
  for (const auto& s : f.series) {
    EXPECT_GT(s.points.back().y, s.points.front().y) << s.label;
  }
  const double at20_a4 = series_value_at(f.series[0], 20);
  const double at20_a10 = series_value_at(f.series[2], 20);
  EXPECT_GT(at20_a10, at20_a4);
}

TEST(Fig4b, IntermediateLowerBoundHasInteriorExtremum) {
  // A = 25: the curve rises then falls (extreme point inside the range).
  const auto f = fig4(sys, 'b');
  const auto& s25 = f.series[0];
  const auto peak = series_max(s25);
  EXPECT_GT(peak.x, s25.points.front().x);
  EXPECT_LT(peak.x, s25.points.back().x);
}

TEST(Fig4c, LargeLowerBoundsDecline) {
  // A >= 51: increasing the expectation only hurts (long-path effect), and
  // at equal width the larger lower bound is worse.
  const auto f = fig4(sys, 'c');
  for (const auto& s : f.series) {
    for (std::size_t i = 1; i < s.points.size(); ++i)
      EXPECT_LE(s.points[i].y, s.points[i - 1].y + 1e-12) << s.label;
  }
  const double at20_a51 = series_value_at(f.series[0], 20);
  const double at20_a70 = series_value_at(f.series[2], 20);
  EXPECT_GT(at20_a51, at20_a70);
}

TEST(Fig4d, ZeroLowerBoundStartsBadThenWins) {
  const auto f = fig4(sys, 'd');
  const auto& u0 = f.series[0];  // U(0, L)
  const auto& u6 = f.series[2];  // U(6, 6+L)
  // Small width: direct sends crush anonymity.
  EXPECT_LT(series_value_at(u0, 2), series_value_at(u6, 2));
  // Large width: U(0,L) overtakes (long-path effect hits the others more).
  EXPECT_GT(series_value_at(u0, 93), series_value_at(u6, 93));
}

TEST(Fig5, PanelsABCOverlayExactly) {
  // Lower bound >= 3 (panels a-c): every uniform curve overlays F at the
  // same mean — the moment-sufficiency theorem, asserted to 1e-12.
  for (char panel : {'a', 'b', 'c'}) {
    const auto f = fig5(sys, panel);
    const auto& fixed = f.series[0];
    for (std::size_t si = 1; si < f.series.size(); ++si) {
      for (const auto& p : f.series[si].points) {
        EXPECT_NEAR(p.y, series_value_at(fixed, p.x), 1e-12)
            << "panel " << panel << " " << f.series[si].label << " L=" << p.x;
      }
    }
  }
}

TEST(Fig5d, VarianceMattersAtSmallMeansVariableBeatsFixed) {
  // Panel d (paper formula (18) + headline claim "variable-length strategies
  // perform better than fixed-length strategies"): at equal small mean,
  // U(1,2L-1) >= U(2,2L-2) >= U(6,2L-6) = F(L). Mass on lengths 1-2 makes
  // the last-hop/penultimate observations ambiguous about the sender, which
  // *raises* entropy; lower bound >= 3 collapses onto the fixed curve.
  const auto f = fig5(sys, 'd');
  const auto& fixed = f.series[0];
  const auto& u1 = f.series[1];
  const auto& u2 = f.series[2];
  const auto& u6 = f.series[3];
  for (double mean : {7.0, 10.0, 15.0}) {
    const double hf = series_value_at(fixed, mean);
    const double h1 = series_value_at(u1, mean);
    const double h2 = series_value_at(u2, mean);
    const double h6 = series_value_at(u6, mean);
    EXPECT_GE(h1, h2 - 1e-12) << mean;
    EXPECT_GE(h2, h6 - 1e-12) << mean;
    EXPECT_NEAR(h6, hf, 1e-12) << mean;  // moment-sufficiency overlay
  }
}

TEST(Fig5d, VarianceDifferenceShrinksAtLargeMeans) {
  // Paper intro: "when the expected path length is sufficiently large, the
  // difference of anonymity degree is relatively small between different
  // variable and fixed path length strategies."
  const auto f = fig5(sys, 'd');
  const auto& fixed = f.series[0];
  const auto& u1 = f.series[1];
  const double gap_small =
      series_value_at(u1, 5) - series_value_at(fixed, 5);
  const double gap_large =
      series_value_at(u1, 49) - series_value_at(fixed, 49);
  EXPECT_GT(gap_small, 0.0);
  EXPECT_LT(gap_large, gap_small / 5.0);
}

TEST(Fig6, OptimizationDominates) {
  const auto f = fig6(sys, 20);
  const auto& fixed = f.series[0];
  const auto& u22 = f.series[1];
  const auto& opt = f.series[2];
  for (const auto& p : opt.points) {
    EXPECT_GE(p.y + 1e-9, series_value_at(fixed, p.x)) << "L=" << p.x;
  }
  for (const auto& p : u22.points) {
    EXPECT_GE(series_value_at(opt, p.x) + 1e-9, p.y) << "L=" << p.x;
  }
  // And strictly better somewhere in the short-mean regime.
  EXPECT_GT(series_value_at(opt, 2), series_value_at(fixed, 2) + 1e-4);
}

TEST(Figures, PrintedFormatIsParseable) {
  const auto f = fig3b(sys);
  std::ostringstream os;
  print_figure(f, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# fig3b"), std::string::npos);
  EXPECT_NE(text.find("x,F(l)"), std::string::npos);
  EXPECT_NE(text.find("\n1,6.48"), std::string::npos);
}

TEST(Figures, SeriesHelpers) {
  labeled_series s{"t", {{0, 1.0}, {1, 3.0}, {2, 2.0}}};
  EXPECT_DOUBLE_EQ(series_max(s).x, 1.0);
  EXPECT_DOUBLE_EQ(series_value_at(s, 2), 2.0);
  EXPECT_THROW((void)series_value_at(s, 9), std::out_of_range);
}

}  // namespace
}  // namespace anonpath::repro
