#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(q.run_until_empty());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&, i] { order.push_back(i); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RelativeSchedulingUsesCurrentTime) {
  event_queue q;
  double fired_at = -1;
  q.schedule_at(2.0, [&] {
    q.schedule_in(0.5, [&] { fired_at = q.now(); });
  });
  q.run_until_empty();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  event_queue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  EXPECT_TRUE(q.run_until_empty());
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  event_queue q;
  EXPECT_FALSE(q.run_next());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  event_queue q;
  q.schedule_at(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), contract_violation);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), contract_violation);
}

TEST(EventQueue, RunawayGuardStops) {
  event_queue q;
  std::function<void()> forever = [&] { q.schedule_in(0.1, forever); };
  q.schedule_at(0.0, forever);
  EXPECT_FALSE(q.run_until_empty(100));
}

TEST(EventQueue, PendingCount) {
  event_queue q;
  EXPECT_EQ(q.pending(), 0u);
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.run_next();
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace anonpath::sim
