#include "src/stats/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <mutex>

namespace anonpath::stats {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    thread_pool pool(threads);
    EXPECT_EQ(pool.worker_count(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::uint64_t i, unsigned worker) {
      EXPECT_LT(worker, pool.worker_count());
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  thread_pool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(100, [&](std::uint64_t i, unsigned) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, WorkerIdsAreConcurrencySafeSlots) {
  // Two bodies running at once must never share a worker id: per-worker
  // scratch indexed by the id (as the MC engine does) would otherwise race.
  thread_pool pool(4);
  std::vector<std::atomic<int>> in_use(pool.worker_count());
  std::atomic<bool> collision{false};
  pool.parallel_for(1000, [&](std::uint64_t, unsigned worker) {
    if (in_use[worker].exchange(1) != 0) collision = true;
    in_use[worker].store(0);
  });
  EXPECT_FALSE(collision.load());
}

TEST(ThreadPool, ZeroCountIsNoop) {
  thread_pool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::uint64_t, unsigned) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesBodyException) {
  thread_pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::uint64_t i, unsigned) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<std::uint64_t> count{0};
  pool.parallel_for(32, [&](std::uint64_t, unsigned) { ++count; });
  EXPECT_EQ(count.load(), 32u);
}

TEST(ThreadPool, FreeFunctionSerialAndParallelAgree) {
  std::vector<double> out_serial(500), out_parallel(500);
  parallel_for(1, out_serial.size(), [&](std::uint64_t i, unsigned) {
    out_serial[i] = static_cast<double>(i) * 0.5;
  });
  parallel_for(8, out_parallel.size(), [&](std::uint64_t i, unsigned) {
    out_parallel[i] = static_cast<double>(i) * 0.5;
  });
  EXPECT_EQ(out_serial, out_parallel);
}

}  // namespace
}  // namespace anonpath::stats
