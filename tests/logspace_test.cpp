#include "src/stats/logspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/chi_square.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/kahan.hpp"

namespace anonpath::stats {
namespace {

TEST(LogSpace, FallingFactorialSmall) {
  EXPECT_DOUBLE_EQ(log_falling_factorial(5, 0), 0.0);
  EXPECT_NEAR(log_falling_factorial(5, 1), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_falling_factorial(5, 3), std::log(60.0), 1e-12);
  EXPECT_NEAR(log_falling_factorial(7, 7), std::log(5040.0), 1e-12);
}

TEST(LogSpace, FallingFactorialLargeMatchesLgamma) {
  const double direct = log_falling_factorial(500, 200);
  const double via_lgamma = std::lgamma(501.0) - std::lgamma(301.0);
  EXPECT_NEAR(direct, via_lgamma, 1e-8);
}

TEST(LogSpace, FallingFactorialPreconditions) {
  EXPECT_THROW((void)log_falling_factorial(-1, 0), contract_violation);
  EXPECT_THROW((void)log_falling_factorial(3, 4), contract_violation);
  EXPECT_THROW((void)log_falling_factorial(3, -1), contract_violation);
}

TEST(LogSpace, BinomialValues) {
  EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(log_binomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(10, 10), 0.0, 1e-12);
  EXPECT_NEAR(log_binomial(52, 5), std::log(2598960.0), 1e-9);
}

TEST(LogSpace, BinomialSymmetry) {
  for (int n = 1; n <= 30; ++n)
    for (int k = 0; k <= n; ++k)
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-10);
}

TEST(LogSpace, LogAddExpBasics) {
  EXPECT_NEAR(log_add_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(log_add_exp(log_zero(), 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add_exp(1.5, log_zero()), 1.5);
  EXPECT_TRUE(std::isinf(log_add_exp(log_zero(), log_zero())));
}

TEST(LogSpace, LogAddExpExtremeMagnitudes) {
  // exp(1000) + exp(0) == exp(1000) to double precision; must not overflow.
  EXPECT_NEAR(log_add_exp(1000.0, 0.0), 1000.0, 1e-9);
  EXPECT_NEAR(log_add_exp(-1000.0, 0.0), 0.0, 1e-9);
}

TEST(LogSpace, LogSumExpMatchesDirect) {
  const std::vector<double> xs{std::log(1.0), std::log(2.0), std::log(3.0),
                               std::log(4.0)};
  EXPECT_NEAR(log_sum_exp(xs), std::log(10.0), 1e-12);
}

TEST(LogSpace, LogSumExpEmptyAndAllZero) {
  EXPECT_TRUE(std::isinf(log_sum_exp({})));
  const std::vector<double> xs{log_zero(), log_zero()};
  EXPECT_TRUE(std::isinf(log_sum_exp(xs)));
}

TEST(Kahan, RecoversSmallIncrements) {
  kahan_sum acc;
  acc.add(1.0);
  for (int i = 0; i < 1000000; ++i) acc.add(1e-16);
  EXPECT_NEAR(acc.value(), 1.0 + 1e-10, 1e-14);
}

TEST(Kahan, MixedSignCancellation) {
  kahan_sum acc;
  acc.add(1e16);
  acc.add(1.0);
  acc.add(-1e16);
  EXPECT_DOUBLE_EQ(acc.value(), 1.0);
}

TEST(ChiSquare, UpperTailKnownValues) {
  // chi2 with k=1: P(X >= 3.841) ~ 0.05; k=10: P(X >= 18.307) ~ 0.05.
  EXPECT_NEAR(chi_square_upper_tail(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_upper_tail(18.307, 10), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_upper_tail(0.0, 5), 1.0, 1e-12);
}

TEST(ChiSquare, GoodnessOfFitDetectsBias) {
  // 2 bins, heavily skewed observation vs uniform expectation.
  const std::vector<std::uint64_t> obs{900, 100};
  const std::vector<double> expected{0.5, 0.5};
  const auto r = chi_square_goodness_of_fit(obs, expected);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquare, GoodnessOfFitAcceptsExactMatch) {
  const std::vector<std::uint64_t> obs{500, 500};
  const std::vector<double> expected{0.5, 0.5};
  const auto r = chi_square_goodness_of_fit(obs, expected);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

}  // namespace
}  // namespace anonpath::stats
