#include "src/anonymity/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> p(8, 0.125);
  EXPECT_NEAR(entropy_bits(p), 3.0, 1e-12);
}

TEST(Entropy, PointMassIsZero) {
  const std::vector<double> p{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy_bits(p), 0.0);
}

TEST(Entropy, NormalizesUnnormalizedInput) {
  const std::vector<double> w{2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(entropy_bits(w), 2.0, 1e-12);
}

TEST(Entropy, BinaryEntropyKnownValue) {
  const std::vector<double> p{0.25, 0.75};
  const double expected = -(0.25 * std::log2(0.25) + 0.75 * std::log2(0.75));
  EXPECT_NEAR(entropy_bits(p), expected, 1e-12);
}

TEST(Entropy, ZeroVectorYieldsZero) {
  const std::vector<double> p{0.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy_bits(p), 0.0);
}

TEST(Entropy, NegativeEntryRejected) {
  const std::vector<double> p{0.5, -0.5};
  EXPECT_THROW((void)entropy_bits(p), contract_violation);
}

TEST(Entropy, MaximizedByUniform) {
  // Any perturbation away from uniform strictly lowers entropy.
  const std::vector<double> uniform(10, 0.1);
  std::vector<double> skewed = uniform;
  skewed[0] += 0.05;
  skewed[1] -= 0.05;
  EXPECT_GT(entropy_bits(uniform), entropy_bits(skewed));
}

TEST(TwoLevelEntropy, UniformOverOthersWhenSpecialZero) {
  EXPECT_NEAR(two_level_entropy_bits(0.0, 1.0, 16), 4.0, 1e-12);
}

TEST(TwoLevelEntropy, ZeroWhenOthersAbsent) {
  EXPECT_DOUBLE_EQ(two_level_entropy_bits(1.0, 0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(two_level_entropy_bits(1.0, 1.0, 0), 0.0);
}

TEST(TwoLevelEntropy, MatchesDirectComputation) {
  // One candidate at weight 3, four at weight 2 => p = {3/11, 2/11 x4}.
  std::vector<double> p{3.0, 2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(two_level_entropy_bits(3.0, 2.0, 4), entropy_bits(p), 1e-12);
}

TEST(TwoLevelEntropy, ScaleInvariant) {
  const double a = two_level_entropy_bits(3.0, 2.0, 7);
  const double b = two_level_entropy_bits(30.0, 20.0, 7);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(TwoLevelEntropy, EqualWeightsGiveLogK1) {
  EXPECT_NEAR(two_level_entropy_bits(1.0, 1.0, 7), 3.0, 1e-12);
}

TEST(TwoLevelEntropy, RejectsNegativeWeights) {
  EXPECT_THROW((void)two_level_entropy_bits(-1.0, 1.0, 3), contract_violation);
  EXPECT_THROW((void)two_level_entropy_bits(1.0, -1.0, 3), contract_violation);
}

TEST(SafeLog2, GuardsNonPositive) {
  EXPECT_DOUBLE_EQ(safe_log2(0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_log2(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_log2(8.0), 3.0);
}

}  // namespace
}  // namespace anonpath
