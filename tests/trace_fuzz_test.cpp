// Corrupted-corpus hardening for the trace parser. read_trace consumes
// untrusted bytes; its contract (trace.hpp) is that ANY input either parses
// to a trace satisfying replay's preconditions or throws anonpath::
// parse_error — never a contract_violation (that exception means a
// programming error inside this repo), never a crash, never an unbounded
// allocation. The corpus is generated deterministically from two seeds: the
// committed golden trace and a synthetic trace exercising every optional
// section (churn, outages, mix failures, retry, attempts).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/trace.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

std::string golden_text() {
  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/trace_v1.trace";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string synthetic_text() {
  sim::sim_config cfg;
  cfg.sys = {12, 2};
  cfg.compromised = spread_compromised(12, 2);
  cfg.lengths = path_length_distribution::uniform(1, 4);
  cfg.message_count = 25;
  cfg.arrival_rate = 50.0;
  cfg.seed = 3;
  cfg.faults.drop_probability = 0.25;
  cfg.faults.churn = {0.2, 0.5};
  cfg.faults.outages = {{4, 0.05, 0.2}};
  cfg.faults.mix_failures = {2, 0.0, 0.3};
  cfg.retry = {2, 0.1, 2.0, 1.0};
  std::ostringstream os;
  sim::write_trace(sim::capture_trace(cfg), os);
  return os.str();
}

/// The property under test: one corrupted input neither crashes nor leaks a
/// contract violation. Successful parses are additionally fed to replay —
/// the parser promised the result satisfies replay's preconditions.
void expect_graceful(const std::string& text, const std::string& what,
                     int* replays_left) {
  try {
    std::istringstream is(text);
    const sim::sim_trace trace = sim::read_trace(is);
    if (replays_left != nullptr && *replays_left > 0) {
      --*replays_left;
      (void)sim::replay_trace(trace);
    }
  } catch (const parse_error&) {
    // The documented outcome for bad input.
  } catch (const contract_violation& e) {
    FAIL() << what << ": contract violation escaped the parser: " << e.what();
  } catch (const std::exception& e) {
    FAIL() << what << ": unexpected exception type: " << e.what();
  }
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    lines.push_back(text.substr(pos, nl - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return lines;
}

std::string join_skipping(const std::vector<std::string>& lines,
                          std::size_t skip) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i == skip) continue;
    out += lines[i];
    out += '\n';
  }
  return out;
}

void fuzz_corpus(const std::string& base, const char* tag) {
  const std::vector<std::string> lines = split_lines(base);
  ASSERT_GT(lines.size(), 10u);
  int replays_left = 40;

  // Every prefix truncation at line granularity, plus mid-line cuts.
  std::size_t offset = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    offset += lines[i].size() + 1;
    expect_graceful(base.substr(0, offset),
                    std::string(tag) + ": truncated after line " +
                        std::to_string(i),
                    &replays_left);
    expect_graceful(base.substr(0, offset - lines[i].size() / 2 - 1),
                    std::string(tag) + ": cut inside line " +
                        std::to_string(i),
                    &replays_left);
  }

  // Every single-line deletion, duplication, and pairwise adjacent swap.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    expect_graceful(join_skipping(lines, i),
                    std::string(tag) + ": deleted line " + std::to_string(i),
                    &replays_left);
    expect_graceful(base + lines[i] + "\n",
                    std::string(tag) + ": re-appended line " +
                        std::to_string(i),
                    &replays_left);
    if (i + 1 < lines.size()) {
      std::vector<std::string> swapped = lines;
      std::swap(swapped[i], swapped[i + 1]);
      expect_graceful(join_skipping(swapped, swapped.size()),
                      std::string(tag) + ": swapped lines " +
                          std::to_string(i),
                      &replays_left);
    }
  }

  // Token mangling: every token of every line, four hostile substitutes.
  // "4294967295"/"99999..." probe count fields for unbounded reserves and
  // index fields for out-of-range nodes/messages; "x" and "-3" probe the
  // numeric parsers; "" (token deletion) probes truncation mid-line.
  const char* evil[] = {"x", "-3", "4294967295", "99999999999999999999", ""};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::istringstream split(lines[i]);
    std::vector<std::string> tokens;
    for (std::string tok; split >> tok;) tokens.push_back(tok);
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      for (const char* sub : evil) {
        std::string rebuilt;
        for (std::size_t k = 0; k < tokens.size(); ++k) {
          if (k == t && sub[0] == '\0') continue;
          if (!rebuilt.empty()) rebuilt += ' ';
          rebuilt += k == t ? sub : tokens[k];
        }
        std::vector<std::string> mutated = lines;
        mutated[i] = rebuilt;
        expect_graceful(join_skipping(mutated, mutated.size()),
                        std::string(tag) + ": line " + std::to_string(i) +
                            " token " + std::to_string(t) + " -> '" + sub +
                            "'",
                        nullptr);
      }
    }
  }

  // Seeded random byte corruption: flip one byte at a time.
  stats::rng gen = stats::rng::stream(0xf0220ULL, 0);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    const std::size_t at = gen.next_below(mutated.size());
    mutated[at] = static_cast<char>(gen.next_below(256));
    expect_graceful(mutated,
                    std::string(tag) + ": byte flip at " + std::to_string(at),
                    nullptr);
  }
}

TEST(TraceFuzz, GoldenCorpusNeverCrashesTheParser) {
  fuzz_corpus(golden_text(), "golden");
}

TEST(TraceFuzz, FaultAndRetryCorpusNeverCrashesTheParser) {
  fuzz_corpus(synthetic_text(), "synthetic");
}

TEST(TraceFuzz, HostileCountsAreRejectedWithoutAllocating) {
  // A forged section count advertising ~4e9 entries must be rejected by
  // validation or by the incremental-growth rule (reserve is capped; a
  // lying count hits "truncated stream"/"unknown tag" on the first missing
  // entry). The malloc itself cannot be observed portably; what is pinned
  // is that the parse returns promptly with parse_error instead of OOMing.
  const std::string base = golden_text();
  const struct {
    const char* needle;
    const char* forged;
  } cases[] = {
      {"compromised-config 2 0 8", "compromised-config 4294967295 0 8"},
      {"dist U(1,5) 6", "dist U(1,5) 4294967295"},
      {"events 66", "events 4294967295"},
      {"events 66", "events 18446744073709551615"},
      {"truths 40", "truths 4294967295"},
      {"truths 40", "truths 18446744073709551615"},
  };
  for (const auto& c : cases) {
    const std::size_t at = base.find(c.needle);
    ASSERT_NE(at, std::string::npos) << c.needle;
    std::string forged = base;
    forged.replace(at, std::string(c.needle).size(), c.forged);
    std::istringstream is(forged);
    EXPECT_THROW((void)sim::read_trace(is), parse_error) << c.needle;
  }
}

TEST(TraceFuzz, ParseErrorsCarryTheTaxonomy) {
  const auto kind_of = [](const std::string& text) {
    std::istringstream is(text);
    try {
      (void)sim::read_trace(is);
    } catch (const parse_error& e) {
      EXPECT_EQ(e.source(), "trace");
      return e.kind();
    }
    ADD_FAILURE() << "parse unexpectedly succeeded";
    return parse_error_kind::io;
  };
  EXPECT_EQ(kind_of("not-a-trace v1\n"), parse_error_kind::mismatch);
  EXPECT_EQ(kind_of("anonpath-trace v2\n"), parse_error_kind::version_mismatch);
  EXPECT_EQ(kind_of("anonpath-trace v1\nsys 16"), parse_error_kind::truncated);
  const std::string base = golden_text();
  std::string mangled = base;
  mangled.replace(mangled.find("messages 40"), 11, "messages 0x");
  EXPECT_EQ(kind_of(mangled), parse_error_kind::malformed);
}

}  // namespace
}  // namespace anonpath
