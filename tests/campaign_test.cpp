// The campaign engine's contracts: deterministic grid expansion with
// feasibility filtering, byte-identical aggregation across thread counts
// (the mc_parallel_test analogue for the scenario fan-out), sane per-cell
// aggregates, and a stable CSV rendering.

#include "src/sim/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace anonpath::sim {
namespace {

campaign_grid small_grid() {
  campaign_grid grid;
  grid.node_counts = {20, 40};
  grid.compromised_counts = {1, 4};
  grid.lengths = {path_length_distribution::fixed(3),
                  path_length_distribution::uniform(1, 8)};
  grid.modes = {routing_mode::source_routed};
  grid.drop_probabilities = {0.0, 0.05};
  grid.arrival_rates = {100.0};
  grid.message_count = 80;
  return grid;
}

std::string csv_of(const campaign_result& r) {
  std::ostringstream os;
  write_csv(r, os);
  return os.str();
}

TEST(CampaignGrid, ExpandsInDeclaredAxisOrder) {
  const auto grid = small_grid();
  const auto cells = expand_grid(grid);
  ASSERT_EQ(cells.size(), grid.cell_count());
  ASSERT_EQ(cells.size(), 16u);
  // node_counts outermost: first half N=20, second half N=40.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(cells[i].node_count, 20u);
  for (std::size_t i = 8; i < 16; ++i) EXPECT_EQ(cells[i].node_count, 40u);
  // drop probability is the innermost varying axis here (rates has size 1).
  EXPECT_EQ(cells[0].drop_probability, 0.0);
  EXPECT_EQ(cells[1].drop_probability, 0.05);
  EXPECT_EQ(cells[0].lengths.label(), cells[1].lengths.label());
  // compromised axis sits outside the strategy axis.
  EXPECT_EQ(cells[0].compromised_count, 1u);
  EXPECT_EQ(cells[4].compromised_count, 4u);
}

TEST(CampaignGrid, SkipsInfeasibleCellsDeterministically) {
  campaign_grid grid;
  grid.node_counts = {6, 40};
  grid.compromised_counts = {1, 6};  // C == N is infeasible at N=6
  grid.lengths = {path_length_distribution::fixed(2),
                  path_length_distribution::uniform(1, 20)};  // > N-1 at N=6
  const auto cells = expand_grid(grid);
  // N=6: only (C=1, F(2)) survives; N=40: all four combinations.
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0].node_count, 6u);
  EXPECT_EQ(cells[0].compromised_count, 1u);
  EXPECT_EQ(cells[0].lengths.label(), "F(2)");
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(cells[i].node_count, 40u);

  campaign_config cfg;
  cfg.replicas = 2;
  const auto result = run_campaign(grid, cfg);
  EXPECT_EQ(result.requested_cells, 8u);
  EXPECT_EQ(result.skipped_cells, 3u);
  EXPECT_EQ(result.runs, 10u);
  EXPECT_EQ(result.cells.size(), 5u);
}

TEST(CampaignGrid, ScenarioConfigCarriesSharedSettings) {
  auto grid = small_grid();
  grid.forward_prob = 0.6;
  grid.latency.base = 0.042;
  const scenario s{20, 4, path_length_distribution::uniform(1, 8),
                   routing_mode::hop_by_hop, 0.05, 100.0};
  const sim_config cfg = scenario_config(s, grid, 99);
  EXPECT_EQ(cfg.sys.node_count, 20u);
  EXPECT_EQ(cfg.sys.compromised_count, 4u);
  EXPECT_EQ(cfg.compromised.size(), 4u);
  EXPECT_EQ(cfg.mode, routing_mode::hop_by_hop);
  EXPECT_EQ(cfg.forward_prob, 0.6);
  EXPECT_EQ(cfg.message_count, 80u);
  EXPECT_EQ(cfg.arrival_rate, 100.0);
  EXPECT_EQ(cfg.latency.base, 0.042);
  EXPECT_EQ(cfg.faults.drop_probability, 0.05);
  EXPECT_EQ(cfg.seed, 99u);
}

TEST(CampaignDeterminism, ByteIdenticalAcrossThreadCounts) {
  // The headline guarantee: same grid + master seed => identical bits and
  // identical CSV for every thread count.
  const auto grid = small_grid();
  campaign_config cfg;
  cfg.replicas = 3;
  cfg.master_seed = 2002;
  cfg.threads = 1;
  const auto base = run_campaign(grid, cfg);
  const std::string base_csv = csv_of(base);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const auto result = run_campaign(grid, cfg);
    ASSERT_EQ(result.cells.size(), base.cells.size()) << threads;
    for (std::size_t i = 0; i < base.cells.size(); ++i) {
      const auto& a = base.cells[i];
      const auto& b = result.cells[i];
      EXPECT_EQ(a.submitted, b.submitted) << threads << " threads, cell " << i;
      EXPECT_EQ(a.delivered, b.delivered) << threads << " threads, cell " << i;
      EXPECT_EQ(a.delivered_fraction.mean(), b.delivered_fraction.mean());
      EXPECT_EQ(a.delivered_fraction.std_error(),
                b.delivered_fraction.std_error());
      EXPECT_EQ(a.latency_seconds.mean(), b.latency_seconds.mean());
      EXPECT_EQ(a.latency_seconds.variance(), b.latency_seconds.variance());
      EXPECT_EQ(a.hops.mean(), b.hops.mean());
      EXPECT_EQ(a.entropy_bits.mean(), b.entropy_bits.mean());
      EXPECT_EQ(a.entropy_bits.std_error(), b.entropy_bits.std_error());
      EXPECT_EQ(a.identified_fraction.mean(), b.identified_fraction.mean());
      EXPECT_EQ(a.top1_accuracy.mean(), b.top1_accuracy.mean());
    }
    EXPECT_EQ(csv_of(result), base_csv) << threads << " threads";
  }
}

TEST(CampaignDeterminism, MasterSeedSelectsTheSample) {
  const auto grid = small_grid();
  campaign_config cfg;
  cfg.replicas = 2;
  cfg.master_seed = 1;
  const auto a = run_campaign(grid, cfg);
  cfg.master_seed = 2;
  const auto b = run_campaign(grid, cfg);
  // Same structure, different draws: at least one latency mean moves.
  ASSERT_EQ(a.cells.size(), b.cells.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.cells.size(); ++i)
    any_diff |= a.cells[i].latency_seconds.mean() !=
                b.cells[i].latency_seconds.mean();
  EXPECT_TRUE(any_diff);
}

TEST(CampaignAggregates, PerCellSummariesAreSane) {
  const auto grid = small_grid();
  campaign_config cfg;
  cfg.replicas = 4;
  const auto result = run_campaign(grid, cfg);
  ASSERT_EQ(result.cells.size(), 16u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.replicas, 4u);
    EXPECT_EQ(cell.submitted, 4u * grid.message_count);
    EXPECT_LE(cell.delivered, cell.submitted);
    EXPECT_EQ(cell.delivered_fraction.count(), 4u);
    EXPECT_GE(cell.delivered_fraction.mean(), 0.0);
    EXPECT_LE(cell.delivered_fraction.mean(), 1.0);
    EXPECT_GT(cell.latency_seconds.mean(), 0.0);
    EXPECT_GT(cell.hops.mean(), 0.0);
    // Source-routed cells carry inference metrics, one scalar per replica.
    EXPECT_EQ(cell.entropy_bits.count(), 4u);
    const double ceiling = std::log2(static_cast<double>(
        cell.scene.node_count - cell.scene.compromised_count));
    EXPECT_GE(cell.entropy_bits.mean(), 0.0);
    EXPECT_LE(cell.entropy_bits.mean(), ceiling);
    EXPECT_GE(cell.identified_fraction.mean(), 0.0);
    EXPECT_LE(cell.identified_fraction.mean(), 1.0);
    EXPECT_GE(cell.top1_accuracy.mean(), 0.0);
    EXPECT_LE(cell.top1_accuracy.mean(), 1.0);
  }
  // Loss must show up: the drop=0.05 cells deliver less than drop=0 cells.
  EXPECT_GT(result.cells[0].delivered, result.cells[1].delivered);
}

TEST(CampaignAggregates, HopByHopCellsSkipInferenceMetrics) {
  campaign_grid grid;
  grid.node_counts = {25};
  grid.compromised_counts = {2};
  grid.lengths = {path_length_distribution::fixed(3)};
  grid.modes = {routing_mode::source_routed, routing_mode::hop_by_hop};
  grid.message_count = 60;
  campaign_config cfg;
  cfg.replicas = 2;
  const auto result = run_campaign(grid, cfg);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].entropy_bits.count(), 2u);
  EXPECT_EQ(result.cells[1].entropy_bits.count(), 0u);
  EXPECT_EQ(result.cells[1].identified_fraction.count(), 0u);
  EXPECT_GT(result.cells[1].delivered, 0u);  // traffic metrics still present
  const std::string csv = csv_of(result);
  EXPECT_NE(csv.find("hop_by_hop"), std::string::npos);
  EXPECT_NE(csv.find("nan,nan"), std::string::npos);
}

TEST(CampaignAggregates, ZeroDeliveryCellsKeepInferenceColumnsAbsent) {
  // A cell whose replicas never deliver must not report entropy 0 ("all
  // senders identified"); its inference summaries stay empty => "nan" CSV.
  campaign_grid grid;
  grid.node_counts = {15};
  grid.compromised_counts = {1};
  grid.lengths = {path_length_distribution::uniform(1, 4)};
  grid.drop_probabilities = {0.99};  // < 1.0 per the network precondition
  grid.message_count = 20;
  campaign_config cfg;
  cfg.replicas = 3;
  const auto result = run_campaign(grid, cfg);
  ASSERT_EQ(result.cells.size(), 1u);
  const auto& cell = result.cells[0];
  EXPECT_EQ(cell.delivered, 0u);
  EXPECT_EQ(cell.entropy_bits.count(), 0u);
  EXPECT_EQ(cell.identified_fraction.count(), 0u);
  EXPECT_EQ(cell.top1_accuracy.count(), 0u);
  EXPECT_EQ(cell.delivered_fraction.mean(), 0.0);
  const std::string csv = csv_of(result);
  EXPECT_NE(csv.find("nan,nan,nan,nan,nan,nan"), std::string::npos);
}

TEST(CampaignCsv, HeaderAndOneRowPerCell) {
  const auto grid = small_grid();
  campaign_config cfg;
  cfg.replicas = 2;
  const auto result = run_campaign(grid, cfg);
  const std::string csv = csv_of(result);
  EXPECT_EQ(csv.rfind("n,c,dist,mode,drop,rate,replicas,messages,", 0), 0u);
  std::size_t lines = 0;
  for (char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, 1u + result.cells.size());
  // Strategy labels contain commas, so they must be quoted.
  EXPECT_NE(csv.find("\"U(1,8)\""), std::string::npos);
}

}  // namespace
}  // namespace anonpath::sim
