// Property/fuzz layer for topology invariants:
//   * every sampled route respects adjacency (and the fabric asserts it);
//   * simulations on restricted graphs deliver, and with churn enabled
//     messages strand at dead hops — deterministically under the seed;
//   * churn rate 0 reproduces the static run bit for bit;
//   * the restricted-path posterior's support is exactly the senders with
//     a positive-probability path (pinned against the graph oracle);
//   * the engine survives mangled observations: it either rejects them or
//     returns a proper distribution, never crashes or mis-normalizes.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/anonymity/path_sampler.hpp"
#include "src/net/graph_oracle.hpp"
#include "src/net/topology_posterior.hpp"
#include "src/sim/network.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

/// A deterministic zoo of valid configs spanning every family, sized by the
/// fuzz iteration.
net::topology_config fuzz_config(std::uint64_t i, std::uint32_t n) {
  net::topology_config cfg;
  switch (i % 4) {
    case 0:
      cfg.kind = net::topology_kind::ring;
      cfg.ring_k = 1 + static_cast<std::uint32_t>(i / 4) % ((n - 1) / 2);
      break;
    case 1:
      cfg.kind = net::topology_kind::random_regular;
      cfg.degree = (n % 2 == 0 && i % 8 == 1) ? 3 : 4;
      cfg.graph_seed = i;
      break;
    case 2:
      cfg.kind = net::topology_kind::tiered;
      cfg.tiers = 2 + static_cast<std::uint32_t>(i) % (n / 3);
      break;
    default:
      cfg.kind = net::topology_kind::trust_weighted;
      cfg.trust_decay = 0.1 + 0.2 * static_cast<double>(i % 5);
      break;
  }
  return cfg;
}

TEST(TopologyProperty, SampledRoutesRespectAdjacency) {
  stats::rng gen(11);
  for (std::uint64_t i = 0; i < 40; ++i) {
    const std::uint32_t n = 8 + static_cast<std::uint32_t>(i % 17);
    const net::topology_config cfg = fuzz_config(i, n);
    ASSERT_TRUE(cfg.valid_for(n)) << cfg.label() << " n=" << n;
    const net::topology topo = net::topology::make(n, cfg);
    for (int rep = 0; rep < 25; ++rep) {
      const auto sender = static_cast<node_id>(gen.next_below(n));
      const auto l = static_cast<path_length>(gen.next_below(9));
      const route r = sample_topology_route(topo, sender, l, gen);
      ASSERT_EQ(r.length(), l);
      node_id prev = sender;
      for (node_id hop : r.hops) {
        ASSERT_TRUE(topo.has_edge(prev, hop))
            << cfg.label() << ": " << prev << "->" << hop;
        prev = hop;
      }
    }
  }
}

TEST(TopologyProperty, FabricAssertsEdgesAndRegistration) {
  // The network is the last line of defense: a send that ignores the graph
  // (or an unregistered party) is a contract violation, not a silent hop.
  const net::topology topo = net::topology::ring(6, 1);
  sim::network net(6, {}, 3, {}, &topo);
  struct sink : sim::message_sink {
    void on_message(node_id, sim::wire_message) override {}
  };
  sink s;
  for (node_id i = 0; i < 6; ++i) net.register_node(i, s);
  net.register_receiver(s);
  EXPECT_THROW(net.send(0, 3, sim::wire_message{}), contract_violation);
  net.send(0, 1, sim::wire_message{});   // a real edge is fine
  net.send(0, 5, sim::wire_message{});   // wrap-around edge too
  net.send(2, receiver_node, sim::wire_message{});  // R always reachable

  sim::network bare(4, {}, 3);
  EXPECT_THROW(bare.send(0, 1, sim::wire_message{}), contract_violation);
}

TEST(TopologyProperty, FabricCountsStrandsSeparatelyFromDrops) {
  // Churn strands are their own counter, distinct from random link drops;
  // the fabric's diagnostics must attribute undelivered messages to the
  // right cause.
  struct sink : sim::message_sink {
    void on_message(node_id, sim::wire_message) override {}
  };
  sink s;
  sim::network net(4, {0.001, 0.0, 0.0}, 5,
                   sim::fault_plan{.churn = net::churn_config{
                       50.0, 10.0}});  // fails fast, stays down
  for (node_id i = 0; i < 4; ++i) net.register_node(i, s);
  net.register_receiver(s);
  EXPECT_TRUE(net.churn().enabled());
  // March simulated time forward so the renewal schedules advance; once a
  // destination is down at send time the message strands.
  for (int i = 0; i < 200; ++i) {
    net.send(0, 1 + static_cast<node_id>(i % 3), sim::wire_message{});
    net.queue().run_until_empty();
  }
  EXPECT_GT(net.stranded_count(), 0u);
  EXPECT_EQ(net.dropped_count(), 0u);  // no loss injection configured
}

TEST(TopologyProperty, RestrictedRunsDeliverAndScore) {
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::uint32_t n = 18 + static_cast<std::uint32_t>(i);
    sim::sim_config cfg;
    cfg.sys = {n, 2};
    cfg.compromised = spread_compromised(n, 2);
    cfg.lengths = path_length_distribution::uniform(1, 5);
    cfg.message_count = 150;
    cfg.seed = 100 + i;
    cfg.topology = fuzz_config(i, n);
    ASSERT_TRUE(cfg.topology.valid_for(n));
    const auto report = sim::run_simulation(cfg);
    // Lossless static fabric: everything delivers (the walk sampler only
    // proposes real edges, or network::send would have thrown).
    EXPECT_EQ(report.delivered, cfg.message_count) << cfg.topology.label();
    EXPECT_FALSE(std::isnan(report.empirical_entropy_bits));
    EXPECT_GT(report.empirical_entropy_bits, 0.0);
    EXPECT_LE(report.top1_accuracy, 1.0);
  }
}

TEST(TopologyProperty, ChurnZeroReproducesStaticRunBitForBit) {
  sim::sim_config cfg;
  cfg.sys = {24, 3};
  cfg.compromised = spread_compromised(24, 3);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 300;
  cfg.seed = 5;
  cfg.collect_posteriors = true;
  cfg.topology.kind = net::topology_kind::ring;
  cfg.topology.ring_k = 3;

  sim::sim_config zero = cfg;
  zero.faults.churn = net::churn_config{0.0, 123.0};  // rate 0, whatever the mean

  const auto a = sim::run_simulation(cfg);
  const auto b = sim::run_simulation(zero);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_EQ(a.hop_histogram, b.hop_histogram);
  EXPECT_EQ(a.posteriors, b.posteriors);
}

TEST(TopologyProperty, ChurnStrandsMessagesDeterministically) {
  sim::sim_config cfg;
  cfg.sys = {30, 2};
  cfg.compromised = spread_compromised(30, 2);
  cfg.lengths = path_length_distribution::uniform(2, 8);
  cfg.message_count = 400;
  cfg.arrival_rate = 100.0;
  cfg.seed = 21;
  cfg.faults.churn = net::churn_config{1.0, 0.3};  // frequent short outages

  const auto a = sim::run_simulation(cfg);
  EXPECT_LT(a.delivered, a.submitted) << "no message ever stranded";
  EXPECT_GT(a.delivered, 0u) << "network completely dead";
  const auto b = sim::run_simulation(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());

  // Churn composes with a restricted graph.
  cfg.topology.kind = net::topology_kind::tiered;
  cfg.topology.tiers = 3;
  const auto c = sim::run_simulation(cfg);
  EXPECT_LT(c.delivered, c.submitted);
  EXPECT_GT(c.delivered, 0u);
}

TEST(TopologyProperty, PosteriorSupportMatchesOracleSupport) {
  // Posterior support ⊆ {senders with a positive-probability path}: on
  // every oracle event, the engine gives mass to exactly the senders the
  // exhaustive enumeration reaches.
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint32_t n = 7;
    const net::topology topo = net::topology::make(n, fuzz_config(i, n));
    const std::vector<node_id> comp{0, 4};
    const system_params sys{n, 2};
    const auto d = path_length_distribution::uniform(0, 3);
    const net::graph_oracle oracle(sys, comp, d, topo);
    const net::topology_posterior_engine engine(sys, comp, d, topo);
    for (const auto& event : oracle.events()) {
      const auto post = engine.sender_posterior(event.obs);
      for (node_id s = 0; s < n; ++s) {
        if (event.posterior[s] == 0.0)
          EXPECT_LT(post[s], 1e-14)
              << topo.config().label() << " phantom mass on " << s;
        else
          EXPECT_GT(post[s], 0.0)
              << topo.config().label() << " lost support on " << s;
      }
    }
  }
}

TEST(TopologyProperty, RingDistanceBoundsSupport) {
  // A direct reachability statement: on ring(1), a sender farther than the
  // max walk length from the first observed node can never have produced
  // the message, and the posterior must say so.
  const std::uint32_t n = 20;
  const net::topology topo = net::topology::ring(n, 1);
  const std::vector<node_id> comp{0};
  const auto d = path_length_distribution::uniform(0, 4);
  const net::topology_posterior_engine engine({n, 1}, comp, d, topo);

  observation obs;  // node 0 saw 19 -> 0 -> 1; receiver heard from 3
  obs.reports.push_back(hop_report{0, 19, 1});
  obs.receiver_predecessor = 3;
  const auto post = engine.sender_posterior(obs);
  for (node_id s = 0; s < n; ++s) {
    const std::uint32_t dist = std::min(s >= 19 ? s - 19 : 19 - s,
                                        n - (s >= 19 ? s - 19 : 19 - s));
    // Walk budget before reaching 19: at most max_length + 1 - (observed
    // span) steps; anything farther is impossible.
    if (dist > 2)
      EXPECT_EQ(post[s], 0.0) << "sender " << s << " is out of range";
  }
  const double total = std::accumulate(post.begin(), post.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TopologyProperty, EngineSurvivesMangledObservations) {
  const std::uint32_t n = 12;
  const net::topology topo = net::topology::tiered(n, 3);
  const std::vector<node_id> comp{1, 6, 10};
  const auto d = path_length_distribution::uniform(1, 5);
  const net::topology_posterior_engine engine({n, 3}, comp, d, topo);

  stats::rng gen(77);
  std::vector<bool> flags(n, false);
  for (node_id c : comp) flags[c] = true;
  std::vector<double> post;
  int rejected = 0;
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    route r = sample_topology_route(
        topo, static_cast<node_id>(gen.next_below(n)),
        static_cast<path_length>(1 + gen.next_below(5)), gen);
    observation obs = observe(r, flags);
    // Mangle: drop a report, swap two reports, or corrupt a field.
    switch (gen.next_below(4)) {
      case 0:
        if (!obs.reports.empty())
          obs.reports.erase(obs.reports.begin() +
                            static_cast<long>(gen.next_below(obs.reports.size())));
        break;
      case 1:
        if (obs.reports.size() >= 2)
          std::swap(obs.reports.front(), obs.reports.back());
        break;
      case 2:
        obs.receiver_predecessor = static_cast<node_id>(gen.next_below(n));
        break;
      default:
        if (!obs.reports.empty())
          obs.reports.front().predecessor =
              static_cast<node_id>(gen.next_below(n));
        break;
    }
    if (engine.try_sender_posterior(obs, post)) {
      ++accepted;
      double total = 0.0;
      for (double p : post) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    } else {
      ++rejected;
      for (double p : post) EXPECT_EQ(p, 0.0);
    }
  }
  // The fuzz must exercise both outcomes to mean anything.
  EXPECT_GT(rejected, 10);
  EXPECT_GT(accepted, 10);
}

}  // namespace
}  // namespace anonpath
