// Round-batched session mode: default-off invariance, destination-plan
// determinism, longitudinal scoring through the simulator, trace round
// trips with the optional session line, and replay == inline equality.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

sim_config session_config_for_test() {
  sim_config cfg;
  cfg.sys = {30, 3};
  cfg.compromised = spread_compromised(30, 3);
  cfg.lengths = path_length_distribution::uniform(1, 5);
  cfg.message_count = 1200;
  cfg.arrival_rate = 150.0;
  cfg.seed = 21;
  cfg.session.rounds = 40;
  cfg.session.receiver_count = 25;
  cfg.session.target_sender = 1;  // node 0 is compromised
  cfg.session.partner = 4;
  cfg.session.attack = attack::attack_kind::sequential_bayes;
  return cfg;
}

TEST(Session, DisabledConfigReportsNoSession) {
  sim_config cfg = session_config_for_test();
  cfg.session = session_config{};
  const sim_report report = run_simulation(cfg);
  EXPECT_FALSE(report.session.has_value());
}

TEST(Session, ConfigValidation) {
  const session_config off{};
  EXPECT_TRUE(off.valid_for(10, 100));
  EXPECT_EQ(off.label(), "off");

  session_config on;
  on.rounds = 20;
  on.receiver_count = 8;
  on.attack = attack::attack_kind::sda;
  EXPECT_TRUE(on.valid_for(10, 100));
  EXPECT_EQ(on.label(), "rounds=20;pop=8;sda");
  EXPECT_FALSE(on.valid_for(10, 10)) << "more rounds than messages";
  on.partner = 8;
  EXPECT_FALSE(on.valid_for(10, 100)) << "partner outside the population";
  on.partner = 0;
  on.target_sender = 10;
  EXPECT_FALSE(on.valid_for(10, 100)) << "target outside the node set";

  // Enabled session on hop-by-hop routing is rejected by run_core.
  sim_config cfg = session_config_for_test();
  cfg.mode = routing_mode::hop_by_hop;
  EXPECT_THROW(run_simulation(cfg), contract_violation);
}

TEST(Session, DestinationPlanIsDeterministicAndTargetPinned) {
  const sim_config cfg = session_config_for_test();
  std::vector<node_id> origins(cfg.message_count);
  for (std::uint32_t i = 0; i < cfg.message_count; ++i)
    origins[i] = static_cast<node_id>(i % cfg.sys.node_count);
  const auto plan =
      assign_session_destinations(cfg.session, cfg.seed, origins);
  const auto again =
      assign_session_destinations(cfg.session, cfg.seed, origins);
  ASSERT_EQ(plan.size(), cfg.message_count);
  for (std::uint32_t i = 0; i < cfg.message_count; ++i) {
    EXPECT_EQ(plan[i].round, again[i].round);
    EXPECT_EQ(plan[i].destination, again[i].destination);
    EXPECT_LT(plan[i].round, cfg.session.rounds);
    EXPECT_LT(plan[i].destination, cfg.session.receiver_count);
    if (origins[i] == cfg.session.target_sender)
      EXPECT_EQ(plan[i].destination, cfg.session.partner);
  }
  // Threshold batching: rounds are consecutive equal batches.
  for (std::uint32_t i = 1; i < cfg.message_count; ++i)
    EXPECT_LE(plan[i - 1].round, plan[i].round);
}

TEST(Session, LongitudinalAttackIdentifiesThePartner) {
  for (const attack::attack_kind kind :
       {attack::attack_kind::intersection,
        attack::attack_kind::sequential_bayes}) {
    sim_config cfg = session_config_for_test();
    cfg.session.attack = kind;
    const sim_report report = run_simulation(cfg);
    ASSERT_TRUE(report.session.has_value());
    const session_report& s = *report.session;
    EXPECT_EQ(s.rounds, cfg.session.rounds);
    ASSERT_EQ(s.trajectory.size(), cfg.session.rounds);
    EXPECT_GT(s.target_messages, 0u);
    EXPECT_TRUE(s.correct) << attack::attack_kind_label(kind);
    EXPECT_EQ(s.top_receiver, cfg.session.partner);
    EXPECT_TRUE(s.identified);
    EXPECT_GT(s.identified_round, 0u);
    EXPECT_LE(s.identified_round, s.rounds);
  }
}

TEST(Session, AttackNoneRecordsNoSessionReport) {
  sim_config cfg = session_config_for_test();
  cfg.session.attack = attack::attack_kind::none;
  const sim_report report = run_simulation(cfg);
  EXPECT_FALSE(report.session.has_value());
}

TEST(Session, RunsAreDeterministic) {
  const sim_config cfg = session_config_for_test();
  const sim_report a = run_simulation(cfg);
  const sim_report b = run_simulation(cfg);
  ASSERT_TRUE(a.session && b.session);
  EXPECT_EQ(a.session->entropy_bits, b.session->entropy_bits);
  EXPECT_EQ(a.session->top_receiver, b.session->top_receiver);
  EXPECT_EQ(a.session->identified_round, b.session->identified_round);
}

TEST(Session, TraceRoundTripPreservesSessionConfig) {
  const sim_config cfg = session_config_for_test();
  const sim_trace trace = capture_trace(cfg);
  std::stringstream ss;
  write_trace(trace, ss);
  EXPECT_NE(ss.str().find("\nsession 40 25 uniform"), std::string::npos);
  const sim_trace back = read_trace(ss);
  EXPECT_EQ(back.config.session, cfg.session);
  // Byte-stable second serialization (write(read(t)) == t).
  std::stringstream ss2;
  write_trace(back, ss2);
  EXPECT_EQ(ss.str(), ss2.str());
}

TEST(Session, ReplayEqualsInlineScoring) {
  const sim_config cfg = session_config_for_test();
  const sim_report inline_report = run_simulation(cfg);
  const sim_report replayed = replay_trace(capture_trace(cfg));
  ASSERT_TRUE(inline_report.session && replayed.session);
  const session_report& a = *inline_report.session;
  const session_report& b = *replayed.session;
  EXPECT_EQ(a.target_messages, b.target_messages);
  EXPECT_EQ(a.entropy_bits, b.entropy_bits);
  EXPECT_EQ(a.top_mass, b.top_mass);
  EXPECT_EQ(a.top_receiver, b.top_receiver);
  EXPECT_EQ(a.identified_round, b.identified_round);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].entropy_bits, b.trajectory[i].entropy_bits);
    EXPECT_EQ(a.trajectory[i].top_mass, b.trajectory[i].top_mass);
  }
}

TEST(Session, MalformedSessionLinesAreRejected) {
  const sim_config cfg = session_config_for_test();
  const sim_trace trace = capture_trace(cfg);
  std::stringstream ss;
  write_trace(trace, ss);
  const std::string good = ss.str();

  auto reject = [](std::string text, const char* what) {
    std::stringstream in(text);
    EXPECT_THROW((void)read_trace(in), std::invalid_argument) << what;
  };
  // The never-written default (rounds 0) must not parse back.
  std::string zero = good;
  zero.replace(zero.find("session 40"), 10, "session 0 ");
  reject(zero, "disabled session line");
  // Unknown attack kinds fail loudly.
  std::string bad_kind = good;
  bad_kind.replace(bad_kind.find("sequential_bayes"), 16, "sequential_bayez");
  reject(bad_kind, "unknown attack kind");
  // Duplicate session sections are rejected.
  const auto at = good.find("session 40");
  const auto line_end = good.find('\n', at);
  std::string dup = good;
  dup.insert(line_end + 1, good.substr(at, line_end - at + 1));
  reject(dup, "duplicate session section");
}

}  // namespace
}  // namespace anonpath::sim
