#include "src/anonymity/observation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace anonpath {
namespace {

std::vector<bool> flags(std::uint32_t n, std::initializer_list<node_id> set) {
  std::vector<bool> f(n, false);
  for (node_id c : set) f[c] = true;
  return f;
}

TEST(Observe, NoCompromisedOnPath) {
  const route r{0, {1, 2, 3}};
  const auto obs = observe(r, flags(8, {7}));
  EXPECT_FALSE(obs.origin.has_value());
  EXPECT_TRUE(obs.reports.empty());
  EXPECT_EQ(obs.receiver_predecessor, 3u);
}

TEST(Observe, CompromisedSenderSetsOrigin) {
  const route r{5, {1, 2}};
  const auto obs = observe(r, flags(8, {5}));
  ASSERT_TRUE(obs.origin.has_value());
  EXPECT_EQ(*obs.origin, 5u);
}

TEST(Observe, SingleMidReporterSeesNeighbors) {
  const route r{0, {1, 2, 3, 4}};
  const auto obs = observe(r, flags(8, {2}));
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].reporter, 2u);
  EXPECT_EQ(obs.reports[0].predecessor, 1u);
  EXPECT_EQ(obs.reports[0].successor, 3u);
  EXPECT_EQ(obs.receiver_predecessor, 4u);
}

TEST(Observe, FirstHopReporterSeesSender) {
  const route r{6, {1, 2}};
  const auto obs = observe(r, flags(8, {1}));
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].predecessor, 6u);
  EXPECT_EQ(obs.reports[0].successor, 2u);
}

TEST(Observe, LastHopReporterSeesReceiver) {
  const route r{0, {1, 2}};
  const auto obs = observe(r, flags(8, {2}));
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].successor, receiver_node);
  EXPECT_EQ(obs.receiver_predecessor, 2u);
}

TEST(Observe, DirectSendExposesSenderToReceiver) {
  const route r{4, {}};
  const auto obs = observe(r, flags(8, {2}));
  EXPECT_TRUE(obs.reports.empty());
  EXPECT_EQ(obs.receiver_predecessor, 4u);
}

TEST(Observe, ReportsInTraversalOrder) {
  const route r{0, {3, 1, 5, 2}};
  const auto obs = observe(r, flags(8, {5, 1, 2}));
  ASSERT_EQ(obs.reports.size(), 3u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);
  EXPECT_EQ(obs.reports[1].reporter, 5u);
  EXPECT_EQ(obs.reports[2].reporter, 2u);
}

TEST(ObservationKey, DistinguishesDistinctObservations) {
  const route a{0, {1, 2, 3}};
  const route b{0, {1, 3, 2}};
  const auto fa = flags(8, {2});
  EXPECT_NE(observe(a, fa).key(), observe(b, fa).key());
}

TEST(ObservationKey, IdenticalForIndistinguishablePaths) {
  // c=7 off-path; both paths end at node 3: adversary view identical.
  const route a{0, {1, 2, 3}};
  const route b{0, {4, 5, 3}};
  const auto fa = flags(8, {7});
  EXPECT_EQ(observe(a, fa).key(), observe(b, fa).key());
}

TEST(Fragments, SingleReporterMakesOneFragment) {
  const route r{0, {1, 2, 3, 4}};
  const auto fa = flags(8, {2});
  const auto frags = assemble_fragments(observe(r, fa), fa);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].nodes, (std::vector<node_id>{1, 2, 3}));
}

TEST(Fragments, AdjacentReportersChain) {
  const route r{0, {1, 2, 3, 4, 5}};
  const auto fa = flags(8, {2, 3});
  const auto frags = assemble_fragments(observe(r, fa), fa);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].nodes, (std::vector<node_id>{1, 2, 3, 4}));
}

TEST(Fragments, SeparatedReportersMakeTwoFragments) {
  const route r{0, {1, 2, 3, 4, 5}};
  const auto fa = flags(8, {2, 5});
  const auto frags = assemble_fragments(observe(r, fa), fa);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].nodes, (std::vector<node_id>{1, 2, 3}));
  EXPECT_EQ(frags[1].nodes, (std::vector<node_id>{4, 5, receiver_node}));
}

TEST(Fragments, TripleChainAcrossWholePath) {
  const route r{7, {1, 2, 3}};
  const auto fa = flags(8, {1, 2, 3});
  const auto frags = assemble_fragments(observe(r, fa), fa);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].nodes, (std::vector<node_id>{7, 1, 2, 3, receiver_node}));
}

TEST(Fragments, InconsistentChainThrows) {
  observation obs;
  obs.reports.push_back({1, 0, 2});  // successor 2 is compromised...
  obs.receiver_predecessor = 3;
  const auto fa = flags(8, {1, 2});  // ...but node 2 never reported
  EXPECT_THROW((void)assemble_fragments(obs, fa), std::invalid_argument);
}

TEST(Fragments, SilentCompromisedPredecessorThrows) {
  observation obs;
  obs.reports.push_back({1, 2, 3});  // predecessor 2 compromised but silent
  obs.receiver_predecessor = 3;
  const auto fa = flags(8, {1, 2});
  EXPECT_THROW((void)assemble_fragments(obs, fa), std::invalid_argument);
}

}  // namespace
}  // namespace anonpath
