// The validation backbone: the exhaustive analyzer is ground truth; the
// analytic C=1 engine and the general posterior engine must agree with it
// exactly (up to floating point) on every system small enough to enumerate.

#include "src/anonymity/brute_force.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(BruteForce, EventProbabilitiesSumToOne) {
  const system_params sys{6, 1};
  const brute_force_analyzer bf(sys, {3}, path_length_distribution::uniform(0, 4));
  EXPECT_NEAR(bf.total_probability(), 1.0, 1e-12);
}

TEST(BruteForce, DirectSendIdentifiesSender) {
  const system_params sys{6, 1};
  const brute_force_analyzer bf(sys, {0}, path_length_distribution::fixed(0));
  EXPECT_NEAR(bf.anonymity_degree(), 0.0, 1e-12);
  for (const auto& e : bf.events()) EXPECT_NEAR(e.entropy_bits, 0.0, 1e-12);
}

TEST(BruteForce, AllCompromisedLeavesNothingHidden) {
  const system_params sys{5, 5};
  const brute_force_analyzer bf(sys, {0, 1, 2, 3, 4},
                                path_length_distribution::uniform(0, 3));
  EXPECT_NEAR(bf.anonymity_degree(), 0.0, 1e-12);
}

TEST(BruteForce, NoCompromisedGivesMaximumUncertaintyAmongConsistent) {
  // C=0: adversary only has the receiver. For fixed l>=1 the receiver sees
  // x_l = v; senders other than v equally likely: H = log2(N-1).
  const system_params sys{6, 0};
  const brute_force_analyzer bf(sys, {}, path_length_distribution::fixed(2));
  EXPECT_NEAR(bf.anonymity_degree(), std::log2(5.0), 1e-12);
}

TEST(BruteForce, GuardsLargeSystems) {
  EXPECT_THROW(brute_force_analyzer(system_params{11, 1}, {0},
                                    path_length_distribution::fixed(1)),
               contract_violation);
}

// ---------------------------------------------------------------------------
// Analytic C=1 engine vs brute force, parameterized over distributions.
// ---------------------------------------------------------------------------

struct dist_case {
  const char* name;
  path_length_distribution (*make)();
};

class AnalyticVsBruteForce : public ::testing::TestWithParam<dist_case> {};

TEST_P(AnalyticVsBruteForce, ExactAgreement) {
  const auto d = GetParam().make();
  for (std::uint32_t n : {5u, 6u, 7u, 8u}) {
    if (d.max_length() > n - 1) continue;
    const system_params sys{n, 1};
    // Compromised identity is irrelevant by symmetry; check two.
    for (node_id c : {node_id{0}, node_id{n - 1}}) {
      const brute_force_analyzer bf(sys, {c}, d);
      EXPECT_NEAR(anonymity_degree(sys, d), bf.anonymity_degree(), 1e-10)
          << GetParam().name << " N=" << n << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, AnalyticVsBruteForce,
    ::testing::Values(
        dist_case{"F0", [] { return path_length_distribution::fixed(0); }},
        dist_case{"F1", [] { return path_length_distribution::fixed(1); }},
        dist_case{"F2", [] { return path_length_distribution::fixed(2); }},
        dist_case{"F3", [] { return path_length_distribution::fixed(3); }},
        dist_case{"F4", [] { return path_length_distribution::fixed(4); }},
        dist_case{"U04", [] { return path_length_distribution::uniform(0, 4); }},
        dist_case{"U13", [] { return path_length_distribution::uniform(1, 3); }},
        dist_case{"U24", [] { return path_length_distribution::uniform(2, 4); }},
        dist_case{"Geom", [] { return path_length_distribution::geometric(0.5, 1, 4); }},
        dist_case{"TwoPoint",
                  [] { return path_length_distribution::two_point(1, 0.3, 4); }},
        dist_case{"Poisson",
                  [] { return path_length_distribution::poisson(1.5, 4); }}),
    [](const ::testing::TestParamInfo<dist_case>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Posterior engine vs brute force, event by event, including C > 1.
// ---------------------------------------------------------------------------

class PosteriorVsBruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(PosteriorVsBruteForce, EveryEventPosteriorMatches) {
  const auto [n, c_count] = GetParam();
  const system_params sys{n, c_count};
  std::vector<node_id> compromised;
  for (std::uint32_t i = 0; i < c_count; ++i)
    compromised.push_back(static_cast<node_id>(2 * i + 1 < n ? 2 * i + 1 : i));
  const auto d = path_length_distribution::uniform(0, std::min(n - 1, 4u));

  const brute_force_analyzer bf(sys, compromised, d);
  const posterior_engine engine(sys, compromised, d);

  double reconstructed_degree = 0.0;
  for (const auto& e : bf.events()) {
    const auto post = engine.sender_posterior(e.obs);
    ASSERT_EQ(post.size(), e.posterior.size());
    for (std::size_t i = 0; i < post.size(); ++i) {
      EXPECT_NEAR(post[i], e.posterior[i], 1e-9)
          << "N=" << n << " C=" << c_count << " event=" << e.obs.key()
          << " node=" << i;
    }
    reconstructed_degree += e.probability * e.entropy_bits;
  }
  EXPECT_NEAR(reconstructed_degree, bf.anonymity_degree(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SystemGrid, PosteriorVsBruteForce,
                         ::testing::Combine(::testing::Values(5u, 6u, 7u, 8u),
                                            ::testing::Values(1u, 2u, 3u)));

// Fixed-length variants exercise different event shapes than uniform.
TEST(PosteriorVsBruteForceFixed, LongPathsManyCompromised) {
  const system_params sys{7, 3};
  const std::vector<node_id> compromised{1, 4, 5};
  for (path_length l : {3u, 5u, 6u}) {
    const auto d = path_length_distribution::fixed(l);
    const brute_force_analyzer bf(sys, compromised, d);
    const posterior_engine engine(sys, compromised, d);
    for (const auto& e : bf.events()) {
      const auto post = engine.sender_posterior(e.obs);
      for (std::size_t i = 0; i < post.size(); ++i)
        EXPECT_NEAR(post[i], e.posterior[i], 1e-9)
            << "l=" << l << " event=" << e.obs.key();
    }
  }
}

TEST(PosteriorVsBruteForceFixed, AdjacentCompromisedChain) {
  // Adjacent compromised ids stress fragment chaining.
  const system_params sys{6, 2};
  const std::vector<node_id> compromised{2, 3};
  const auto d = path_length_distribution::uniform(1, 5);
  const brute_force_analyzer bf(sys, compromised, d);
  const posterior_engine engine(sys, compromised, d);
  for (const auto& e : bf.events()) {
    const auto post = engine.sender_posterior(e.obs);
    for (std::size_t i = 0; i < post.size(); ++i)
      EXPECT_NEAR(post[i], e.posterior[i], 1e-9) << e.obs.key();
  }
}

}  // namespace
}  // namespace anonpath
