#include "src/anonymity/path_sampler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/stats/chi_square.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/histogram.hpp"

namespace anonpath {
namespace {

TEST(SimpleRoute, DistinctHopsExcludingSender) {
  stats::rng g(1);
  for (int i = 0; i < 500; ++i) {
    const auto r = sample_simple_route(12, 5, 8, g);
    EXPECT_EQ(r.sender, 5u);
    EXPECT_EQ(r.length(), 8u);
    std::set<node_id> uniq(r.hops.begin(), r.hops.end());
    EXPECT_EQ(uniq.size(), 8u);
    EXPECT_FALSE(uniq.contains(5u));
  }
}

TEST(SimpleRoute, MaximumLengthUsesAllOtherNodes) {
  stats::rng g(2);
  const auto r = sample_simple_route(6, 0, 5, g);
  std::set<node_id> uniq(r.hops.begin(), r.hops.end());
  EXPECT_EQ(uniq, (std::set<node_id>{1, 2, 3, 4, 5}));
}

TEST(SimpleRoute, UniformOverOrderedArrangements) {
  // N=4, sender 0, length 2: 6 ordered pairs from {1,2,3}, all equal.
  stats::rng g(3);
  std::map<std::pair<node_id, node_id>, std::uint64_t> counts;
  constexpr int n = 60000;
  for (int i = 0; i < n; ++i) {
    const auto r = sample_simple_route(4, 0, 2, g);
    ++counts[{r.hops[0], r.hops[1]}];
  }
  ASSERT_EQ(counts.size(), 6u);
  std::vector<std::uint64_t> obs;
  for (const auto& [k, v] : counts) obs.push_back(v);
  const std::vector<double> expected(6, 1.0 / 6.0);
  const auto res = stats::chi_square_goodness_of_fit(obs, expected);
  EXPECT_GT(res.p_value, 1e-4);
}

TEST(SimpleRoute, RejectsOverlongPaths) {
  stats::rng g(4);
  EXPECT_THROW((void)sample_simple_route(5, 0, 5, g), contract_violation);
  EXPECT_THROW((void)sample_simple_route(5, 5, 1, g), contract_violation);
}

TEST(ComplicatedRoute, NoImmediateRepeats) {
  stats::rng g(5);
  for (int i = 0; i < 300; ++i) {
    const auto r = sample_complicated_route(6, 2, 10, g);
    node_id prev = r.sender;
    for (node_id hop : r.hops) {
      EXPECT_NE(hop, prev);
      prev = hop;
    }
  }
}

TEST(ComplicatedRoute, RevisitsDoHappen) {
  // With N=4 and length 10, revisits are essentially certain.
  stats::rng g(6);
  bool revisit = false;
  bool sender_reappears = false;
  for (int i = 0; i < 200 && !(revisit && sender_reappears); ++i) {
    const auto r = sample_complicated_route(4, 1, 10, g);
    std::set<node_id> uniq(r.hops.begin(), r.hops.end());
    if (uniq.size() < r.hops.size()) revisit = true;
    if (uniq.contains(1u)) sender_reappears = true;
  }
  EXPECT_TRUE(revisit);
  EXPECT_TRUE(sender_reappears);
}

TEST(ComplicatedRoute, FirstHopUniformOverOthers) {
  stats::rng g(7);
  stats::int_histogram h(5);
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto r = sample_complicated_route(5, 2, 1, g);
    h.add(r.hops[0]);
  }
  std::vector<double> expected{0.25, 0.25, 0.0, 0.25, 0.25};
  const auto res = stats::chi_square_goodness_of_fit(h.counts(), expected);
  EXPECT_GT(res.p_value, 1e-4);
  EXPECT_EQ(h.count(2), 0u);
}

TEST(SampleRoute, DrawsSenderUniformly) {
  stats::rng g(8);
  const auto d = path_length_distribution::fixed(2);
  stats::int_histogram h(8);
  constexpr int n = 80000;
  for (int i = 0; i < n; ++i)
    h.add(sample_route(8, d, path_model::simple, g).sender);
  const std::vector<double> expected(8, 0.125);
  const auto res = stats::chi_square_goodness_of_fit(h.counts(), expected);
  EXPECT_GT(res.p_value, 1e-4);
}

TEST(SampleRoute, RespectsLengthDistribution) {
  stats::rng g(9);
  const auto d = path_length_distribution::uniform(1, 4);
  stats::int_histogram h(5);
  for (int i = 0; i < 60000; ++i)
    h.add(sample_route(10, d, path_model::complicated, g).length());
  const auto res = stats::chi_square_goodness_of_fit(h.counts(), d.dense_pmf());
  EXPECT_GT(res.p_value, 1e-4);
}

}  // namespace
}  // namespace anonpath
