// End-to-end integration: running the actual protocol machinery (onion
// wrapping, relays, timestamped adversary capture, Bayesian fusion) must
// reproduce the paper's analytic anonymity degree — closing the loop between
// the system and the theory.

#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/monte_carlo.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

TEST(SimIntegration, AllMessagesDelivered) {
  sim_config cfg;
  cfg.sys = {20, 1};
  cfg.compromised = {4};
  cfg.lengths = path_length_distribution::uniform(0, 6);
  cfg.message_count = 500;
  cfg.seed = 11;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.delivered, 500u);
  EXPECT_EQ(r.submitted, 500u);
}

TEST(SimIntegration, RealizedHopsMatchLengthDistribution) {
  sim_config cfg;
  cfg.sys = {30, 1};
  cfg.compromised = {2};
  cfg.lengths = path_length_distribution::uniform(1, 5);
  cfg.message_count = 4000;
  cfg.seed = 13;
  const auto r = run_simulation(cfg);
  EXPECT_NEAR(r.realized_hops.mean(), 3.0, 0.1);
  EXPECT_DOUBLE_EQ(r.realized_hops.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.realized_hops.max(), 5.0);
}

TEST(SimIntegration, LatencyGrowsWithPathLength) {
  sim_config cfg;
  cfg.sys = {30, 1};
  cfg.compromised = {2};
  cfg.message_count = 800;
  cfg.seed = 17;
  cfg.lengths = path_length_distribution::fixed(2);
  const auto short_paths = run_simulation(cfg);
  cfg.lengths = path_length_distribution::fixed(10);
  const auto long_paths = run_simulation(cfg);
  EXPECT_GT(long_paths.end_to_end_latency.mean(),
            short_paths.end_to_end_latency.mean() * 2.5);
}

TEST(SimIntegration, EmpiricalEntropyMatchesAnalyticDegree) {
  // The headline validation: adversary's measured mean posterior entropy ==
  // the closed-form H*(S), within Monte-Carlo error.
  for (const auto& lengths :
       {path_length_distribution::fixed(3),
        path_length_distribution::uniform(0, 8),
        path_length_distribution::geometric(0.7, 1, 19)}) {
    sim_config cfg;
    cfg.sys = {20, 1};
    cfg.compromised = {7};
    cfg.lengths = lengths;
    cfg.message_count = 6000;
    cfg.seed = 23;
    const auto r = run_simulation(cfg);
    const double exact = anonymity_degree(cfg.sys, cfg.lengths);
    EXPECT_NEAR(r.empirical_entropy_bits, exact,
                5.0 * r.empirical_entropy_stderr + 1e-9)
        << lengths.label();
  }
}

TEST(SimIntegration, EmpiricalEntropyMultipleCompromised) {
  // C = 3: no closed form; the simulator must agree with the direct
  // Monte-Carlo estimator since both use the exact posterior engine.
  sim_config cfg;
  cfg.sys = {15, 3};
  cfg.compromised = {1, 6, 11};
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 5000;
  cfg.seed = 29;
  const auto r = run_simulation(cfg);
  const auto mc = estimate_anonymity_degree(cfg.sys, cfg.compromised,
                                            cfg.lengths, 20000, 31);
  EXPECT_NEAR(r.empirical_entropy_bits, mc.degree,
              5.0 * (r.empirical_entropy_stderr + mc.std_error));
}

TEST(SimIntegration, ZeroLengthPathsAreFullyIdentified) {
  sim_config cfg;
  cfg.sys = {20, 1};
  cfg.compromised = {3};
  cfg.lengths = path_length_distribution::fixed(0);
  cfg.message_count = 300;
  cfg.seed = 37;
  const auto r = run_simulation(cfg);
  EXPECT_NEAR(r.empirical_entropy_bits, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.identified_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.top1_accuracy, 1.0);
}

TEST(SimIntegration, DeterministicUnderSeed) {
  sim_config cfg;
  cfg.sys = {20, 2};
  cfg.compromised = {3, 9};
  cfg.lengths = path_length_distribution::uniform(1, 5);
  cfg.message_count = 400;
  cfg.seed = 41;
  const auto a = run_simulation(cfg);
  const auto b = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_DOUBLE_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
}

TEST(SimIntegration, CrowdsModeRealizesGeometricLengths) {
  sim_config cfg;
  cfg.sys = {25, 1};
  cfg.compromised = {5};
  cfg.mode = routing_mode::hop_by_hop;
  cfg.forward_prob = 0.6;
  cfg.message_count = 6000;
  cfg.seed = 43;
  const auto r = run_simulation(cfg);
  EXPECT_EQ(r.delivered, 6000u);
  // Hop count ~ geometric starting at 1 with mean 1/(1-pf) = 2.5.
  EXPECT_NEAR(r.realized_hops.mean(), 2.5, 0.1);
  EXPECT_DOUBLE_EQ(r.realized_hops.min(), 1.0);
  // Entropy pipeline is defined only for simple-path (source-routed) runs.
  EXPECT_TRUE(std::isnan(r.empirical_entropy_bits));
}

TEST(SimIntegration, MoreCompromisedNodesLowerEntropy) {
  sim_config base;
  base.sys = {24, 1};
  base.compromised = {0};
  base.lengths = path_length_distribution::uniform(1, 8);
  base.message_count = 3000;
  base.seed = 47;
  const auto one = run_simulation(base);

  sim_config more = base;
  more.sys = {24, 6};
  more.compromised = {0, 4, 8, 12, 16, 20};
  const auto six = run_simulation(more);
  EXPECT_LT(six.empirical_entropy_bits, one.empirical_entropy_bits - 0.1);
  EXPECT_GT(six.identified_fraction, one.identified_fraction);
}

TEST(SimIntegration, ValidatesConfig) {
  sim_config cfg;
  cfg.sys = {10, 2};
  cfg.compromised = {1};  // wrong cardinality
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
  cfg.compromised = {1, 11};  // out of range
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
  cfg = sim_config{};
  cfg.sys = {10, 1};
  cfg.compromised = {0};
  cfg.lengths = path_length_distribution::fixed(10);  // > N-1
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
}

}  // namespace
}  // namespace anonpath::sim
