#include "src/anonymity/posterior.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/anonymity/path_sampler.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

std::vector<bool> flags(std::uint32_t n, const std::vector<node_id>& set) {
  std::vector<bool> f(n, false);
  for (node_id c : set) f[c] = true;
  return f;
}

TEST(Posterior, SumsToOne) {
  const system_params sys{20, 3};
  const std::vector<node_id> comp{2, 7, 11};
  const auto d = path_length_distribution::uniform(0, 10);
  const posterior_engine engine(sys, comp, d);
  stats::rng gen(1);
  for (int i = 0; i < 200; ++i) {
    const route r = sample_route(sys.node_count, d, path_model::simple, gen);
    const auto post = engine.sender_posterior(observe(r, flags(20, comp)));
    const double total = std::accumulate(post.begin(), post.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Posterior, TrueSenderAlwaysPossible) {
  // The generative sender must never receive zero posterior mass.
  const system_params sys{15, 4};
  const std::vector<node_id> comp{0, 5, 9, 14};
  const auto d = path_length_distribution::uniform(0, 8);
  const posterior_engine engine(sys, comp, d);
  stats::rng gen(7);
  for (int i = 0; i < 300; ++i) {
    const route r = sample_route(sys.node_count, d, path_model::simple, gen);
    const auto post = engine.sender_posterior(observe(r, flags(15, comp)));
    EXPECT_GT(post[r.sender], 0.0) << "iteration " << i;
  }
}

TEST(Posterior, CompromisedSenderIsPointMass) {
  const system_params sys{10, 2};
  const std::vector<node_id> comp{3, 6};
  const auto d = path_length_distribution::uniform(1, 5);
  const posterior_engine engine(sys, comp, d);
  route r{3, {0, 1}};
  const auto post = engine.sender_posterior(observe(r, flags(10, comp)));
  EXPECT_DOUBLE_EQ(post[3], 1.0);
  for (node_id i = 0; i < 10; ++i) {
    if (i != 3) {
      EXPECT_DOUBLE_EQ(post[i], 0.0);
    }
  }
}

TEST(Posterior, FirstHopCompromisedFixedShortPathIdentifiesSender) {
  // F(1): the single intermediate sees pred = sender and succ = R.
  const system_params sys{10, 1};
  const std::vector<node_id> comp{4};
  const auto d = path_length_distribution::fixed(1);
  const posterior_engine engine(sys, comp, d);
  route r{2, {4}};
  const auto post = engine.sender_posterior(observe(r, flags(10, comp)));
  EXPECT_NEAR(post[2], 1.0, 1e-12);
}

TEST(Posterior, VariableLengthLastHopKeepsSenderAmbiguous) {
  // With lengths {1,2} both possible, a compromised last hop cannot tell
  // whether its predecessor is the sender (l=1) or an intermediate (l=2).
  const system_params sys{10, 1};
  const std::vector<node_id> comp{4};
  const auto d = path_length_distribution::uniform(1, 2);
  const posterior_engine engine(sys, comp, d);
  route r{2, {4}};
  const auto post = engine.sender_posterior(observe(r, flags(10, comp)));
  EXPECT_GT(post[2], 0.0);
  EXPECT_LT(post[2], 1.0);
  // All other consistent senders share the remainder equally (use node 0 as
  // the reference generic candidate).
  for (node_id i = 1; i < 10; ++i) {
    if (i == 2 || i == 4) continue;
    EXPECT_GT(post[i], 0.0);
    EXPECT_NEAR(post[i], post[0], 1e-12);
  }
}

TEST(Posterior, CompromisedNodesExcludedWithoutOriginReport) {
  const system_params sys{12, 3};
  const std::vector<node_id> comp{1, 5, 8};
  const auto d = path_length_distribution::uniform(0, 6);
  const posterior_engine engine(sys, comp, d);
  stats::rng gen(3);
  for (int i = 0; i < 200; ++i) {
    route r = sample_route(sys.node_count, d, path_model::simple, gen);
    if (flags(12, comp)[r.sender]) continue;  // origin case tested separately
    const auto post = engine.sender_posterior(observe(r, flags(12, comp)));
    for (node_id c : comp) EXPECT_DOUBLE_EQ(post[c], 0.0);
  }
}

TEST(Posterior, FastPathMatchesReference) {
  // The class-collapsed fast path and the per-candidate reference must be
  // bit-for-bit comparable across many random observations and C values.
  stats::rng gen(42);
  for (std::uint32_t c_count : {1u, 2u, 4u}) {
    const system_params sys{16, c_count};
    std::vector<node_id> comp;
    for (std::uint32_t i = 0; i < c_count; ++i)
      comp.push_back(static_cast<node_id>(i * 3 + 1));
    const auto d = path_length_distribution::uniform(0, 9);
    const posterior_engine engine(sys, comp, d);
    for (int i = 0; i < 150; ++i) {
      const route r = sample_route(sys.node_count, d, path_model::simple, gen);
      const auto obs = observe(r, flags(16, comp));
      const auto fast = engine.sender_posterior(obs);
      const auto ref = engine.sender_posterior_reference(obs);
      for (std::size_t k = 0; k < fast.size(); ++k)
        EXPECT_NEAR(fast[k], ref[k], 1e-12)
            << "C=" << c_count << " obs=" << obs.key() << " node=" << k;
    }
  }
}

TEST(Posterior, ReceiverPredecessorExcludedUnlessDirectPossible) {
  // Support {1..3}: v = x_l can never be the sender.
  const system_params sys{10, 1};
  const std::vector<node_id> comp{9};
  const auto d = path_length_distribution::uniform(1, 3);
  const posterior_engine engine(sys, comp, d);
  route r{0, {1, 2}};
  const auto post = engine.sender_posterior(observe(r, flags(10, comp)));
  EXPECT_DOUBLE_EQ(post[2], 0.0);  // v = 2
}

TEST(Posterior, DirectSendGivesReceiverPredecessorMass) {
  // Support {0..3}: now v could be the sender (l = 0).
  const system_params sys{10, 1};
  const std::vector<node_id> comp{9};
  const auto d = path_length_distribution::uniform(0, 3);
  const posterior_engine engine(sys, comp, d);
  route r{0, {1, 2}};
  const auto post = engine.sender_posterior(observe(r, flags(10, comp)));
  EXPECT_GT(post[2], 0.0);  // v = 2 now plausible as direct sender
}

TEST(Posterior, ConstructorValidatesArguments) {
  const auto d = path_length_distribution::fixed(2);
  EXPECT_THROW(posterior_engine(system_params{10, 2}, {1}, d),
               contract_violation);
  EXPECT_THROW(posterior_engine(system_params{10, 1}, {10}, d),
               contract_violation);
  EXPECT_THROW(posterior_engine(system_params{10, 2}, {3, 3}, d),
               contract_violation);
  EXPECT_THROW(posterior_engine(system_params{5, 1}, {0},
                                path_length_distribution::fixed(5)),
               contract_violation);
}

}  // namespace
}  // namespace anonpath
