// End-to-end determinism of the instrumentation: the telemetry a campaign
// records must be a pure function of the logical work — bit-identical
// stable renderings across thread counts, across shard/merge splits, and
// across repeated runs of the same simulation (span structure included).
// Timing values are the one sanctioned nondeterminism; stable_text already
// excludes them, which is exactly what these tests lean on.

#include "src/sim/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "src/obs/jsonl.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/sim/simulator.hpp"

namespace anonpath::sim {
namespace {

campaign_grid obs_grid() {
  campaign_grid grid;
  grid.node_counts = {16, 24};
  grid.compromised_counts = {2};
  grid.lengths = {path_length_distribution::fixed(3),
                  path_length_distribution::uniform(1, 5)};
  grid.modes = {routing_mode::source_routed};
  grid.drop_probabilities = {0.0, 0.1};
  grid.arrival_rates = {100.0};
  grid.message_count = 40;
  return grid;
}

obs::metrics_snapshot campaign_snapshot(const campaign_grid& grid,
                                        unsigned threads,
                                        std::uint32_t shard_index = 0,
                                        std::uint32_t shard_count = 1) {
  campaign_config cfg;
  cfg.replicas = 2;
  cfg.master_seed = 404;
  cfg.threads = threads;
  cfg.shard_index = shard_index;
  cfg.shard_count = shard_count;
  std::string checkpoint;
  if (shard_count > 1) {
    // Sharded campaigns require a checkpoint journal; park it in TempDir.
    checkpoint = ::testing::TempDir() + "obs_det_shard_" +
                 std::to_string(shard_index) + "of" +
                 std::to_string(shard_count) + ".ckpt";
    std::remove(checkpoint.c_str());
    cfg.checkpoint_path = checkpoint;
  }
  obs::metrics_registry registry;
  cfg.metrics = &registry;
  (void)run_campaign(grid, cfg);
  if (!checkpoint.empty()) std::remove(checkpoint.c_str());
  return registry.snapshot();
}

TEST(ObsDeterminism, CampaignMetricsIdenticalAcrossThreadCounts) {
  const auto grid = obs_grid();
  const obs::metrics_snapshot base = campaign_snapshot(grid, 1);

  // Sanity on the catalogue before comparing: every run and cell counted.
  ASSERT_EQ(base.counters.at("campaign.cells_completed"), 8u);
  ASSERT_EQ(base.counters.at("campaign.runs_completed"), 16u);
  ASSERT_EQ(base.counters.count("campaign.runs_errored"), 0u);
  ASSERT_GT(base.counters.at("sim.events_executed"), 0u);
  ASSERT_EQ(base.counters.at("sim.messages_submitted"), 16u * 40u);
  ASSERT_EQ(base.histograms.at("campaign.run_us").total(), 16u);
  ASSERT_EQ(base.histograms.at("campaign.cell_us").total(), 8u);

  const std::string base_text = obs::stable_text(base, {});
  for (unsigned threads : {2u, 8u}) {
    const obs::metrics_snapshot other = campaign_snapshot(grid, threads);
    EXPECT_EQ(obs::stable_text(other, {}), base_text) << threads;
  }
}

TEST(ObsDeterminism, ShardedMetricsMergeToUnshardedSnapshot) {
  const auto grid = obs_grid();
  const obs::metrics_snapshot whole = campaign_snapshot(grid, 2);
  // Two shards, deliberately run at different thread counts: the merged
  // telemetry must still equal the unsharded run's, bit for bit.
  const obs::metrics_snapshot shard0 = campaign_snapshot(grid, 1, 0, 2);
  const obs::metrics_snapshot shard1 = campaign_snapshot(grid, 3, 1, 2);
  const obs::metrics_snapshot merged = obs::merge_snapshots(shard0, shard1);
  EXPECT_EQ(obs::stable_text(merged, {}), obs::stable_text(whole, {}));
  EXPECT_EQ(merged.counters, whole.counters);
}

TEST(ObsDeterminism, SimulatorSpanTreeStructureIsReproducible) {
  sim_config cfg;
  cfg.sys = {20, 1};
  cfg.compromised = {4};
  cfg.lengths = path_length_distribution::uniform(1, 4);
  cfg.message_count = 50;
  cfg.seed = 9;

  std::string first;
  for (int repeat = 0; repeat < 2; ++repeat) {
    obs::tracer tracer;
    cfg.tracer = &tracer;
    (void)run_simulation(cfg);
    const auto& spans = tracer.spans();
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "sim.run");
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].name, "sim.run_core");
    EXPECT_EQ(spans[1].parent, spans[0].id);
    EXPECT_EQ(spans[2].name, "sim.score");
    EXPECT_EQ(spans[2].parent, spans[0].id);
    const std::string text = obs::stable_text({}, spans);
    if (repeat == 0)
      first = text;
    else
      EXPECT_EQ(text, first);
  }
}

TEST(ObsDeterminism, UninstrumentedRunsUnaffectedByRegistryPresence) {
  // The observability hooks must be write-only taps: a campaign with a
  // registry attached computes the same cells as one without.
  const auto grid = obs_grid();
  campaign_config plain;
  plain.replicas = 2;
  plain.master_seed = 404;
  plain.threads = 2;
  const auto without = run_campaign(grid, plain);

  campaign_config tapped = plain;
  obs::metrics_registry registry;
  obs::progress_meter meter;  // inert: progress off
  tapped.metrics = &registry;
  tapped.progress = &meter;
  const auto with = run_campaign(grid, tapped);

  std::ostringstream a, b;
  write_csv(without, a);
  write_csv(with, b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace anonpath::sim
