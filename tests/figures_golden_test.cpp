// Golden-file regression for the figure generators: the committed
// tests/golden/figures_n100.csv snapshot of every fig3-fig6 series is
// diffed against freshly generated curves, so a refactor of the analytic
// engine, the optimizer, or the figure code cannot silently bend the
// paper's published curves. Structure (figure ids, series labels, grids)
// must match byte for byte; values must match to well below the snapshot's
// printed precision.
//
// Regenerate the snapshot (after an *intentional* curve change only) with:
//   ./build/anonpath figures --n 100 > tests/golden/figures_n100.csv

#include "src/repro/figures.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace anonpath::repro {
namespace {

#ifndef ANONPATH_TEST_DATA_DIR
#error "ANONPATH_TEST_DATA_DIR must point at the tests/ source directory"
#endif

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// The exact figure sequence `anonpath figures --n 100` emits.
std::string generate_all_figures() {
  const system_params sys{100, 1};
  std::ostringstream os;
  print_figure(fig3a(sys), os);
  print_figure(fig3b(sys), os);
  for (char p : {'a', 'b', 'c', 'd'}) {
    print_figure(fig4(sys, p), os);
    print_figure(fig5(sys, p), os);
  }
  print_figure(fig6(sys, 50), os);
  return os.str();
}

bool parse_point(const std::string& line, double& x, double& y) {
  const auto comma = line.find(',');
  if (comma == std::string::npos) return false;
  char* end = nullptr;
  x = std::strtod(line.c_str(), &end);
  if (end != line.c_str() + comma) return false;
  y = std::strtod(line.c_str() + comma + 1, &end);
  return *end == '\0';
}

TEST(FiguresGolden, EveryCurveMatchesTheCommittedSnapshot) {
  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/figures_n100.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream golden_text;
  golden_text << in.rdbuf();

  const auto golden = split_lines(golden_text.str());
  const auto fresh = split_lines(generate_all_figures());
  ASSERT_GT(golden.size(), 1500u) << "golden file truncated?";
  ASSERT_EQ(fresh.size(), golden.size());

  std::size_t points = 0;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    double gx = 0, gy = 0, fx = 0, fy = 0;
    const bool g_is_point = parse_point(golden[i], gx, gy);
    const bool f_is_point = parse_point(fresh[i], fx, fy);
    ASSERT_EQ(g_is_point, f_is_point) << "line " << i + 1;
    if (!g_is_point) {
      // Structural line: figure id, series label, or CSV header — exact.
      EXPECT_EQ(fresh[i], golden[i]) << "line " << i + 1;
      continue;
    }
    ++points;
    EXPECT_EQ(fx, gx) << "line " << i + 1;
    // The snapshot prints 6 significant digits; anything past half an ulp
    // of that precision is a genuine curve change, not formatting noise.
    const double tol = 5e-6 * std::max(1.0, std::fabs(gy)) + 1e-9;
    EXPECT_NEAR(fy, gy, tol) << "line " << i + 1 << ": " << golden[i];
  }
  EXPECT_GT(points, 1500u);
}

TEST(FiguresGolden, SnapshotCoversEveryFigure) {
  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/figures_n100.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const std::string& s = text.str();
  for (const char* id : {"# fig3a", "# fig3b", "# fig4a", "# fig4b",
                         "# fig4c", "# fig4d", "# fig5a", "# fig5b",
                         "# fig5c", "# fig5d", "# fig6"}) {
    EXPECT_NE(s.find(id), std::string::npos) << id;
  }
}

}  // namespace
}  // namespace anonpath::repro
