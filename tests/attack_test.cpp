// Unit tests for the longitudinal disclosure-attack family: intersection
// semantics and the hitting-set oracle, SDA estimation/confidence, the
// sequential-Bayes update in crisp and soft (fusion-weight) modes, and the
// trajectory runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/attack/intersection.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sequential_bayes.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::attack {
namespace {

round_observation target_round(std::vector<node_id> receivers) {
  round_observation obs;
  obs.target_present = true;
  obs.receivers = std::move(receivers);
  return obs;
}

round_observation background_round(std::vector<node_id> receivers) {
  round_observation obs;
  obs.target_present = false;
  obs.receivers = std::move(receivers);
  return obs;
}

TEST(AttackKinds, LabelsRoundTrip) {
  for (const attack_kind k :
       {attack_kind::none, attack_kind::intersection, attack_kind::sda,
        attack_kind::sequential_bayes}) {
    const auto parsed = parse_attack_kind(attack_kind_label(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(parse_attack_kind("bayes"), attack_kind::sequential_bayes);
  EXPECT_FALSE(parse_attack_kind("frequency").has_value());
  EXPECT_THROW(make_attack(attack_kind::none, 10), contract_violation);
}

TEST(IntersectionAttack, NarrowsToThePartner) {
  intersection_attack atk(6);
  // Partner 4 is in every target round; each other receiver misses one.
  atk.observe_round(target_round({4, 0, 1, 2}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{0, 1, 2, 4}));
  atk.observe_round(target_round({4, 0, 1, 3}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{0, 1, 4}));
  atk.observe_round(target_round({4, 1, 5}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{1, 4}));
  atk.observe_round(target_round({4, 0, 5}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{4}));
  const auto post = atk.posterior();
  EXPECT_DOUBLE_EQ(post[4], 1.0);
  for (node_id r : {0u, 1u, 2u, 3u, 5u}) EXPECT_DOUBLE_EQ(post[r], 0.0);
}

TEST(IntersectionAttack, BackgroundRoundsCarryNoSetEvidence) {
  intersection_attack atk(5);
  atk.observe_round(target_round({2, 3}));
  atk.observe_round(background_round({0, 1, 4}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{2, 3}));
}

TEST(IntersectionAttack, EmptyTargetRoundIsLossNotContradiction) {
  // A target round where nothing was delivered (total loss) carries no set
  // evidence; it must not empty the intersection and disable the attack.
  intersection_attack atk(5);
  atk.observe_round(target_round({2, 3}));
  atk.observe_round(target_round({}));
  EXPECT_TRUE(atk.consistent());
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{2, 3}));
  atk.observe_round(target_round({2}));
  EXPECT_EQ(atk.candidates(), (std::vector<node_id>{2}));
}

TEST(IntersectionAttack, InconsistentEvidenceDegradesToUniform) {
  intersection_attack atk(4);
  atk.observe_round(target_round({1}));
  // The target's message was dropped this round: disjoint receiver set.
  atk.observe_round(target_round({2, 3}));
  EXPECT_FALSE(atk.consistent());
  const auto post = atk.posterior();
  for (double p : post) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(HittingSets, SingletonAndPairInstances) {
  // {0,1},{1,2},{1,3}: 1 hits everything alone.
  EXPECT_EQ(minimum_hitting_sets({{0, 1}, {1, 2}, {1, 3}}, 4),
            (std::vector<std::vector<node_id>>{{1}}));
  // {0,1},{2,3}: no singleton; all four cross pairs, lexicographic.
  EXPECT_EQ(minimum_hitting_sets({{0, 1}, {2, 3}}, 4),
            (std::vector<std::vector<node_id>>{{0, 2}, {0, 3}, {1, 2},
                                               {1, 3}}));
  // Disjoint singletons force size 3.
  EXPECT_EQ(minimum_hitting_sets({{0}, {1}, {2}}, 3),
            (std::vector<std::vector<node_id>>{{0, 1, 2}}));
  EXPECT_THROW(minimum_hitting_sets({}, 3), contract_violation);
  EXPECT_THROW(minimum_hitting_sets({{21}}, 22), contract_violation);
}

TEST(SdaAttack, RecoversThePartnerWithConfidence) {
  // Partner 7 in every target round over uniform background on 10
  // receivers; rotating background keeps non-partners symmetric.
  sda_attack atk(10);
  for (std::uint32_t r = 0; r < 60; ++r) {
    atk.observe_round(target_round(
        {7, static_cast<node_id>(r % 7), static_cast<node_id>((r + 3) % 7)}));
    atk.observe_round(background_round(
        {static_cast<node_id>(r % 10), static_cast<node_id>((r + 5) % 10)}));
  }
  const auto signal = atk.signal();
  const auto top =
      std::max_element(signal.begin(), signal.end()) - signal.begin();
  EXPECT_EQ(top, 7);
  // The estimator targets the target's sending pmf: a point mass on 7.
  EXPECT_NEAR(signal[7], 1.0, 0.25);
  const auto z = atk.confidence();
  EXPECT_GT(z[7], 5.0) << "partner should be many sigma above the null";
  for (node_id r = 0; r < 7; ++r)
    EXPECT_LT(z[r], 3.5) << "non-partner " << r;
  const auto post = atk.posterior();
  EXPECT_EQ(std::max_element(post.begin(), post.end()) - post.begin(), 7);
}

TEST(SdaAttack, UniformBeforeEvidence) {
  sda_attack atk(4);
  atk.observe_round(background_round({0, 1}));
  for (double p : atk.posterior()) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(SequentialBayes, CrispModeEliminatesAbsentReceivers) {
  // With a known uniform background, one round annihilates every receiver
  // not in it — matching intersection semantics exactly.
  sequential_bayes_config cfg;
  cfg.background_pmf = std::vector<double>(6, 1.0 / 6.0);
  sequential_bayes_attack atk(6, cfg);
  atk.observe_round(target_round({4, 0, 1}));
  auto post = atk.posterior();
  EXPECT_DOUBLE_EQ(post[2], 0.0);
  EXPECT_DOUBLE_EQ(post[3], 0.0);
  EXPECT_DOUBLE_EQ(post[5], 0.0);
  atk.observe_round(target_round({4, 2, 3}));
  post = atk.posterior();
  EXPECT_DOUBLE_EQ(post[4], 1.0);
}

TEST(SequentialBayes, CrispResidualIsExactlyZeroForAnyRoundSize) {
  // m = 49 is the smallest round size where the float sum of m copies of
  // 1/m lands below 1, which used to leave a 1-ulp residual and keep
  // absent receivers alive at ~5e-17 instead of annihilating them.
  sequential_bayes_config cfg;
  cfg.background_pmf = std::vector<double>(60, 1.0 / 60.0);
  sequential_bayes_attack atk(60, cfg);
  std::vector<node_id> receivers(49);
  for (std::size_t j = 0; j < receivers.size(); ++j)
    receivers[j] = static_cast<node_id>(j % 40);  // 40..59 absent
  atk.observe_round(target_round(std::move(receivers)));
  const auto post = atk.posterior();
  for (node_id r = 40; r < 60; ++r)
    EXPECT_EQ(post[r], 0.0) << "receiver " << r << " must be annihilated";
}

TEST(SequentialBayes, PopularReceiversNeedMoreEvidence) {
  // Against a skewed known background, co-occurrence with a popular
  // receiver is weaker evidence than with an unpopular one: after one round
  // containing both, the unpopular receiver ranks higher.
  sequential_bayes_config cfg;
  cfg.background_pmf = {0.7, 0.1, 0.1, 0.1};
  sequential_bayes_attack atk(4, cfg);
  atk.observe_round(target_round({0, 1}));
  const auto post = atk.posterior();
  EXPECT_GT(post[1], post[0]);
}

TEST(SequentialBayes, OnlineBackgroundLearningIdentifies) {
  // No configured pmf: q is learned from background rounds. Partner 9 with
  // rotating uniform-ish background still converges.
  sequential_bayes_attack atk(12);
  for (std::uint32_t r = 0; r < 40; ++r) {
    atk.observe_round(background_round({static_cast<node_id>(r % 12),
                                        static_cast<node_id>((r + 4) % 12)}));
    atk.observe_round(target_round(
        {9, static_cast<node_id>(r % 9), static_cast<node_id>((r + 2) % 9)}));
  }
  const auto post = atk.posterior();
  EXPECT_EQ(std::max_element(post.begin(), post.end()) - post.begin(), 9);
  EXPECT_GT(post[9], 0.99);
}

TEST(SequentialBayes, SoftWeightsKeepUnobservedRoundsSurvivable) {
  // All weights zero (the adversary saw nothing): evidence is the residual
  // alone, identical for every receiver — the posterior must stay uniform,
  // where crisp mode would have annihilated the absentees.
  sequential_bayes_config cfg;
  cfg.background_pmf = std::vector<double>(5, 0.2);
  sequential_bayes_attack atk(5, cfg);
  round_observation obs = target_round({1, 2});
  obs.target_weight = {0.0, 0.0};
  atk.observe_round(obs);
  for (double p : atk.posterior()) EXPECT_DOUBLE_EQ(p, 0.2);

  // Confident weight on the message to receiver 3 dominates a diffuse one.
  round_observation strong = target_round({3, 4});
  strong.target_weight = {0.9, 0.05};
  atk.observe_round(strong);
  const auto post = atk.posterior();
  EXPECT_GT(post[3], post[4]);
  EXPECT_GT(post[4], 0.0) << "soft mode must not annihilate";
}

TEST(SequentialBayes, DuplicateReceiverWithZeroWeightAppliesEvidenceOnce) {
  // A zero-weight delivery used to re-push the receiver into the touched
  // list (scratch still 0), double-applying the round's likelihood ratio.
  // Weight order for the same receiver must not matter.
  sequential_bayes_config cfg;
  cfg.background_pmf = std::vector<double>(6, 1.0 / 6.0);
  sequential_bayes_attack a(6, cfg);
  round_observation zero_first = target_round({3, 3, 1});
  zero_first.target_weight = {0.0, 0.5, 0.2};
  a.observe_round(zero_first);

  sequential_bayes_attack b(6, cfg);
  round_observation zero_last = target_round({3, 3, 1});
  zero_last.target_weight = {0.5, 0.0, 0.2};
  b.observe_round(zero_last);

  const auto pa = a.posterior();
  const auto pb = b.posterior();
  for (node_id r = 0; r < 6; ++r) EXPECT_DOUBLE_EQ(pa[r], pb[r]) << r;
}

TEST(SequentialBayes, MembershipNoiseSurvivesMisattributedRounds) {
  // One partnerless "target" round (a coincidental background send, or the
  // target's message dropped) between clean rounds: with noise 0 the true
  // partner 4 is annihilated irreversibly; with a noise floor the penalty
  // is log(nu) and the clean evidence recovers the partner.
  sequential_bayes_config crisp;
  crisp.background_pmf = std::vector<double>(8, 1.0 / 8.0);
  sequential_bayes_attack hard(8, crisp);
  sequential_bayes_config noisy = crisp;
  noisy.membership_noise = 0.05;
  sequential_bayes_attack soft(8, noisy);
  for (sequential_bayes_attack* atk : {&hard, &soft}) {
    for (std::uint32_t r = 0; r < 6; ++r)
      atk->observe_round(
          target_round({4, static_cast<node_id>(r % 4)}));
    atk->observe_round(target_round({0, 1}));  // partner absent
    for (std::uint32_t r = 0; r < 6; ++r)
      atk->observe_round(
          target_round({4, static_cast<node_id>((r + 2) % 4)}));
  }
  // Noise 0: the bad round annihilates 4 (the only survivor), so the
  // posterior collapses to the documented uniform fallback — total failure.
  for (double p : hard.posterior()) EXPECT_DOUBLE_EQ(p, 1.0 / 8.0);
  const auto post = soft.posterior();
  EXPECT_EQ(std::max_element(post.begin(), post.end()) - post.begin(), 4);
  EXPECT_GT(post[4], 0.9);
}

TEST(Workload, EstimatedMembershipNoiseIsZeroAtFullRateAndPositiveBelow) {
  workload::population_config cfg;
  cfg.seed = 3;
  cfg.user_count = 300;
  cfg.receiver_count = 100;
  cfg.round_count = 10;
  cfg.round_size = 16;
  cfg.persistent_rate = 1.0;
  EXPECT_EQ(estimated_membership_noise(workload::population(cfg), 0), 0.0);
  cfg.persistent_rate = 0.7;
  const double nu =
      estimated_membership_noise(workload::population(cfg), 0);
  EXPECT_GT(nu, 0.0);
  EXPECT_LT(nu, 0.5) << "coincidence should be the minority explanation";
}

TEST(Runner, TrajectoryConvergesOnWorkload) {
  workload::population_config cfg;
  cfg.seed = 5;
  // Large sender population: a crisp (set-theoretic) attack is brittle
  // against coincidental background sends from the tracked user, which
  // mis-attribute a round and can annihilate the true partner — rare only
  // when users >> background draws.
  cfg.user_count = 20000;
  cfg.receiver_count = 120;
  cfg.round_count = 80;
  cfg.persistent_pairs = 2;
  // Below 1 so the two pairs' round sets differ: at rate 1 both partners
  // appear in *every* round and are information-theoretically
  // indistinguishable (no attack could separate them).
  cfg.persistent_rate = 0.6;
  cfg.round_size = 6;
  const workload::population pop(cfg);
  for (std::uint32_t pair = 0; pair < 2; ++pair) {
    auto atk = make_attack(attack_kind::sequential_bayes, 120);
    const attack_result result = run_workload_attack(pop, pair, *atk, 0.99, 4);
    ASSERT_FALSE(result.trajectory.empty());
    EXPECT_EQ(result.trajectory.back().round, 80u);
    ASSERT_TRUE(result.identified_round.has_value());
    EXPECT_EQ(result.top_receiver, pop.pairs()[pair].receiver);
    EXPECT_LT(result.trajectory.back().entropy_bits,
              result.trajectory.front().entropy_bits + 1e-9);
    // identified_round is the first identified trajectory point.
    for (const trajectory_point& pt : result.trajectory) {
      if (pt.round < *result.identified_round) EXPECT_FALSE(pt.identified);
      if (pt.round == *result.identified_round) EXPECT_TRUE(pt.identified);
    }
  }
}

TEST(Runner, StrideOneSamplesEveryRound) {
  workload::population_config cfg;
  cfg.seed = 9;
  cfg.user_count = 50;
  cfg.receiver_count = 40;
  cfg.round_count = 12;
  cfg.round_size = 4;
  const workload::population pop(cfg);
  auto atk = make_attack(attack_kind::intersection, 40);
  const attack_result result = run_workload_attack(pop, 0, *atk, 0.99, 1);
  ASSERT_EQ(result.trajectory.size(), 12u);
  for (std::uint32_t r = 0; r < 12; ++r)
    EXPECT_EQ(result.trajectory[r].round, r + 1);
}

}  // namespace
}  // namespace anonpath::attack
