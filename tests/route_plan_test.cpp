// Conformance layer for src/net/route_plan: Dijkstra distances and Yen's
// k-shortest-paths pinned against exhaustive simple-path enumeration on
// N <= 8 fixtures, connected components (full and masked), CSR/vector
// storage equivalence, and the route_planner's selection model.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::net {
namespace {

std::vector<topology> fixture_graphs() {
  std::vector<topology> graphs;
  graphs.push_back(topology::complete(6));
  graphs.push_back(topology::ring(8, 1));
  graphs.push_back(topology::ring(7, 2));
  graphs.push_back(topology::tiered(7, 3));
  graphs.push_back(topology::trust_weighted(6, 0.5));
  graphs.push_back(topology::random_regular(8, 3, 11));
  return graphs;
}

/// Every simple s->t path in the graph, by DFS. Exponential, which is
/// exactly why it only runs on the N <= 8 fixtures.
void enumerate_paths(const topology& topo, node_id t,
                     std::vector<node_id>& stack, std::vector<bool>& used,
                     std::vector<planned_path>& out) {
  const node_id u = stack.back();
  if (u == t) {
    double cost = 0.0;
    for (std::size_t i = 0; i + 1 < stack.size(); ++i)
      cost += edge_cost(topo.edge_weight(stack[i], stack[i + 1]));
    out.push_back(planned_path{stack, cost});
    return;
  }
  const neighbor_view nbr = topo.adjacency(u);
  for (std::uint32_t i = 0; i < nbr.size; ++i) {
    const node_id v = nbr.ids[i];
    if (used[v]) continue;
    used[v] = true;
    stack.push_back(v);
    enumerate_paths(topo, t, stack, used, out);
    stack.pop_back();
    used[v] = false;
  }
}

std::vector<planned_path> all_simple_paths(const topology& topo, node_id s,
                                           node_id t) {
  std::vector<planned_path> out;
  std::vector<node_id> stack{s};
  std::vector<bool> used(topo.node_count(), false);
  used[s] = true;
  enumerate_paths(topo, t, stack, used, out);
  std::sort(out.begin(), out.end(),
            [](const planned_path& a, const planned_path& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.nodes < b.nodes;
            });
  return out;
}

void check_path_valid(const topology& topo, const planned_path& p, node_id s,
                      node_id t) {
  ASSERT_GE(p.nodes.size(), 2u);
  EXPECT_EQ(p.nodes.front(), s);
  EXPECT_EQ(p.nodes.back(), t);
  std::vector<bool> seen(topo.node_count(), false);
  double cost = 0.0;
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    ASSERT_FALSE(seen[p.nodes[i]]) << "loop in planned path";
    seen[p.nodes[i]] = true;
    if (i + 1 < p.nodes.size()) {
      ASSERT_TRUE(topo.has_edge(p.nodes[i], p.nodes[i + 1]))
          << p.nodes[i] << "->" << p.nodes[i + 1] << " is not an edge";
      cost += edge_cost(topo.edge_weight(p.nodes[i], p.nodes[i + 1]));
    }
  }
  EXPECT_NEAR(p.cost, cost, 1e-12);
}

TEST(RoutePlan, DijkstraMatchesBruteForceDistances) {
  for (const auto& topo : fixture_graphs()) {
    const std::uint32_t n = topo.node_count();
    for (node_id s = 0; s < n; ++s) {
      const shortest_path_tree tree = dijkstra(topo, s);
      ASSERT_EQ(tree.source, s);
      ASSERT_EQ(tree.dist.size(), n);
      ASSERT_EQ(tree.parent.size(), n);
      EXPECT_EQ(tree.dist[s], 0.0);
      EXPECT_EQ(tree.parent[s], no_vertex);
      for (node_id t = 0; t < n; ++t) {
        if (t == s) continue;
        const auto paths = all_simple_paths(topo, s, t);
        ASSERT_FALSE(paths.empty()) << "fixtures are connected";
        EXPECT_NEAR(tree.dist[t], paths.front().cost, 1e-12)
            << topo.config().label() << " " << s << "->" << t;
        // The parent chain is itself a path of exactly that cost.
        double chain_cost = 0.0;
        for (node_id v = t; v != s; v = tree.parent[v]) {
          ASSERT_NE(tree.parent[v], no_vertex);
          chain_cost += edge_cost(topo.edge_weight(tree.parent[v], v));
        }
        EXPECT_NEAR(chain_cost, tree.dist[t], 1e-12);
      }
    }
  }
}

TEST(RoutePlan, ShortestPathMatchesTree) {
  for (const auto& topo : fixture_graphs()) {
    const std::uint32_t n = topo.node_count();
    const shortest_path_tree tree = dijkstra(topo, 0);
    for (node_id t = 1; t < n; ++t) {
      const auto p = shortest_path(topo, 0, t);
      ASSERT_TRUE(p.has_value());
      check_path_valid(topo, *p, 0, t);
      EXPECT_NEAR(p->cost, tree.dist[t], 1e-12);
    }
  }
}

TEST(RoutePlan, YenMatchesBruteForceEnumeration) {
  // Exhaustive pin: for every (s, t) pair of every fixture and k in
  // {1, 3, 5}, Yen's result must be valid loopless paths, distinct,
  // best-first, and its cost sequence must equal the first k costs of the
  // fully enumerated, (cost, lexicographic) sorted simple-path list. Cost
  // ties between distinct equal-cost paths may legally resolve in either
  // order, so the sequences are compared by cost, not node identity.
  for (const auto& topo : fixture_graphs()) {
    const std::uint32_t n = topo.node_count();
    for (node_id s = 0; s < n; ++s) {
      for (node_id t = 0; t < n; ++t) {
        if (t == s) continue;
        const auto all = all_simple_paths(topo, s, t);
        for (std::uint32_t k : {1u, 3u, 5u}) {
          const auto got = k_shortest_paths(topo, s, t, k);
          const std::size_t want = std::min<std::size_t>(k, all.size());
          ASSERT_EQ(got.size(), want)
              << topo.config().label() << " " << s << "->" << t << " k=" << k;
          for (std::size_t i = 0; i < got.size(); ++i) {
            check_path_valid(topo, got[i], s, t);
            EXPECT_NEAR(got[i].cost, all[i].cost, 1e-12)
                << topo.config().label() << " " << s << "->" << t
                << " rank " << i;
            if (i > 0) {
              EXPECT_GE(got[i].cost, got[i - 1].cost - 1e-12);
              EXPECT_NE(got[i].nodes, got[i - 1].nodes);
            }
            // Every returned path must exist in the enumeration.
            EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                                    [&](const planned_path& p) {
                                      return p.nodes == got[i].nodes;
                                    }));
          }
          // Distinct across the whole result, not just neighbors.
          for (std::size_t i = 0; i < got.size(); ++i)
            for (std::size_t j = i + 1; j < got.size(); ++j)
              EXPECT_NE(got[i].nodes, got[j].nodes);
        }
      }
    }
  }
}

TEST(RoutePlan, YenIsDeterministic) {
  const auto topo = topology::random_regular(8, 3, 5);
  const auto a = k_shortest_paths(topo, 0, 5, 6);
  const auto b = k_shortest_paths(topo, 0, 5, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RoutePlan, ConnectedComponentsWholeGraphIsOne) {
  for (const auto& topo : fixture_graphs()) {
    const auto comp = connected_components(topo);
    ASSERT_EQ(comp.size(), topo.node_count());
    for (std::uint32_t label : comp) EXPECT_EQ(label, 0u);
  }
}

TEST(RoutePlan, MaskedComponentsSplitTheRing) {
  // Cutting nodes 0 and 5 out of an 8-ring leaves two arcs: {1,2,3,4} and
  // {6,7}. Labels are 0-based in first-discovery order; inactive nodes get
  // the no_vertex sentinel.
  const auto topo = topology::ring(8, 1);
  std::vector<bool> active(8, true);
  active[0] = false;
  active[5] = false;
  const auto comp = connected_components(topo, active);
  ASSERT_EQ(comp.size(), 8u);
  EXPECT_EQ(comp[0], no_vertex);
  EXPECT_EQ(comp[5], no_vertex);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[6], comp[7]);
  EXPECT_NE(comp[1], comp[6]);
}

TEST(RoutePlan, CsrAdjacencyMatchesVectorMode) {
  // The two storage modes are built from the same edge list; adjacency(u)
  // must be element-identical — ids, weights, cumulative tables — and the
  // derived accessors and sampling draws must agree exactly.
  std::vector<topology_config> configs;
  configs.push_back(topology_config{});  // complete
  {
    topology_config c;
    c.kind = topology_kind::ring;
    c.ring_k = 2;
    configs.push_back(c);
  }
  {
    topology_config c;
    c.kind = topology_kind::random_regular;
    c.degree = 4;
    c.graph_seed = 9;
    configs.push_back(c);
  }
  {
    topology_config c;
    c.kind = topology_kind::tiered;
    c.tiers = 3;
    configs.push_back(c);
  }
  {
    topology_config c;
    c.kind = topology_kind::trust_weighted;
    c.trust_decay = 0.6;
    configs.push_back(c);
  }
  const std::uint32_t n = 24;
  for (const auto& cfg : configs) {
    const topology vec = topology::make(n, cfg);
    const topology csr = topology::make_csr(n, cfg);
    ASSERT_FALSE(vec.is_csr());
    ASSERT_TRUE(csr.is_csr());
    EXPECT_EQ(vec.edge_count(), csr.edge_count());
    EXPECT_EQ(vec.min_degree(), csr.min_degree());
    EXPECT_EQ(vec.max_degree(), csr.max_degree());
    EXPECT_TRUE(csr.connected());
    for (node_id u = 0; u < n; ++u) {
      const neighbor_view a = vec.adjacency(u);
      const neighbor_view b = csr.adjacency(u);
      ASSERT_EQ(a.size, b.size) << cfg.label() << " node " << u;
      for (std::uint32_t i = 0; i < a.size; ++i) {
        EXPECT_EQ(a.ids[i], b.ids[i]);
        EXPECT_EQ(a.weights[i], b.weights[i]);
        EXPECT_EQ(a.cum[i], b.cum[i]);
      }
      EXPECT_EQ(vec.degree(u), csr.degree(u));
      EXPECT_EQ(vec.total_weight(u), csr.total_weight(u));
      // Identical rng state must produce identical walk draws.
      stats::rng ga(42 + u), gb(42 + u);
      for (int step = 0; step < 16; ++step)
        EXPECT_EQ(vec.sample_neighbor(u, ga), csr.sample_neighbor(u, gb));
    }
    // Route planning sees the same graph through either mode.
    const shortest_path_tree ta = dijkstra(vec, 0);
    const shortest_path_tree tb = dijkstra(csr, 0);
    for (node_id v = 0; v < n; ++v) {
      EXPECT_EQ(ta.dist[v], tb.dist[v]);
      EXPECT_EQ(ta.parent[v], tb.parent[v]);
    }
  }
}

TEST(RoutePlan, VectorAccessorsContractFailOnCsr) {
  const auto csr = topology::make_csr(10, topology_config{});
  EXPECT_THROW((void)csr.neighbors(0), contract_violation);
  EXPECT_THROW((void)csr.neighbor_weights(0), contract_violation);
}

TEST(RoutePlan, RoutingConfigValidityAndLabels) {
  routing_config walk;
  EXPECT_FALSE(walk.planned());
  EXPECT_TRUE(walk.valid());
  EXPECT_EQ(walk.label(), "walk");
  routing_config kp;
  kp.kind = route_select::kpaths;
  kp.k = 4;
  EXPECT_TRUE(kp.planned());
  EXPECT_TRUE(kp.valid());
  EXPECT_EQ(kp.label(), "kpaths(4)");
  kp.k = 0;
  EXPECT_FALSE(kp.valid());
  kp.k = 65;
  EXPECT_FALSE(kp.valid());
  kp.k = 64;
  EXPECT_TRUE(kp.valid());
}

TEST(RoutePlan, PlannerRoutesAreValidAndDeterministic) {
  const auto topo = topology::random_regular(12, 4, 3);
  routing_config cfg;
  cfg.kind = route_select::kpaths;
  cfg.k = 3;
  route_planner pa(topo, cfg), pb(topo, cfg);
  stats::rng ga = stats::rng::stream(99, 1), gb = stats::rng::stream(99, 1);
  for (int i = 0; i < 200; ++i) {
    const node_id sender = static_cast<node_id>(i % 12);
    const route ra = pa.sample_route(sender, ga);
    const route rb = pb.sample_route(sender, gb);
    EXPECT_EQ(ra.sender, sender);
    EXPECT_EQ(ra.hops, rb.hops) << "same stream, same route";
    // Planned paths are loopless: 1 <= hops <= N - 1, the exit differs
    // from the sender, and each hop follows a graph edge.
    ASSERT_GE(ra.hops.size(), 1u);
    ASSERT_LE(ra.hops.size(), 11u);
    EXPECT_NE(ra.hops.back(), sender);
    node_id prev = sender;
    std::vector<bool> seen(12, false);
    seen[sender] = true;
    for (node_id h : ra.hops) {
      EXPECT_TRUE(topo.has_edge(prev, h));
      EXPECT_FALSE(seen[h]) << "planned route revisits " << h;
      seen[h] = true;
      prev = h;
    }
  }
  EXPECT_GT(pa.planned_pairs(), 0u);
  EXPECT_LE(pa.planned_pairs(), 12u * 11u);
}

TEST(RoutePlan, PlannerExitLawCoversAllTargets) {
  // exit ~ Uniform(V \ {sender}): over many draws from one sender, every
  // other node must appear as the terminal hop.
  const auto topo = topology::ring(6, 2);
  routing_config cfg;
  cfg.kind = route_select::kpaths;
  cfg.k = 2;
  route_planner planner(topo, cfg);
  stats::rng gen(7);
  std::vector<bool> exit_seen(6, false);
  for (int i = 0; i < 400; ++i) {
    const route r = planner.sample_route(0, gen);
    exit_seen[r.hops.back()] = true;
  }
  EXPECT_FALSE(exit_seen[0]);
  for (node_id v = 1; v < 6; ++v)
    EXPECT_TRUE(exit_seen[v]) << "exit " << v << " never drawn";
}

TEST(RoutePlan, KpathSupportRestrictedSets) {
  // Ring(8, 1), source 0, exit 2, k = 1: the one shortest path is 0-1-2,
  // so the support is exactly {0, 1, 2}. Raising k to 2 admits the
  // long-way-around path and the support becomes the whole cycle.
  const auto topo = topology::ring(8, 1);
  const auto tight = kpath_support(topo, 1, {0}, {2});
  ASSERT_EQ(tight.size(), 8u);
  for (node_id v = 0; v < 8; ++v)
    EXPECT_EQ(tight[v], v <= 2) << "node " << v;
  const auto wide = kpath_support(topo, 2, {0}, {2});
  for (node_id v = 0; v < 8; ++v) EXPECT_TRUE(wide[v]);
}

TEST(RoutePlan, KpathSupportAllExitsIsFull) {
  // The sim model's uniform exit law: with every node an exit, every node
  // is on some planned path — the mask degenerates to full support.
  const auto topo = topology::random_regular(10, 3, 2);
  std::vector<node_id> all;
  for (node_id v = 0; v < 10; ++v) all.push_back(v);
  const auto support = kpath_support(topo, 1, {0}, all);
  for (node_id v = 0; v < 10; ++v) EXPECT_TRUE(support[v]);
}

TEST(RoutePlan, DijkstraOnCsrAtModerateScale) {
  // A fast stand-in for the CI million-node smoke: 50k-node sparse CSR
  // graph, full Dijkstra, everything reachable.
  topology_config cfg;
  cfg.kind = topology_kind::random_regular;
  cfg.degree = 4;
  cfg.graph_seed = 17;
  const auto topo = topology::make_csr(50000, cfg);
  EXPECT_EQ(topo.edge_count(), 100000u);
  const auto tree = dijkstra(topo, 12345);
  std::uint64_t reachable = 0;
  for (double d : tree.dist)
    if (d < std::numeric_limits<double>::infinity()) ++reachable;
  EXPECT_EQ(reachable, 50000u);
}

}  // namespace
}  // namespace anonpath::net
