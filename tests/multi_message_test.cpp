#include "src/anonymity/multi_message.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(CombinePosteriors, SingleFactorIsIdentity) {
  const std::vector<std::vector<double>> ps{{0.1, 0.6, 0.3}};
  const auto fused = combine_posteriors(ps);
  EXPECT_NEAR(fused[0], 0.1, 1e-12);
  EXPECT_NEAR(fused[1], 0.6, 1e-12);
  EXPECT_NEAR(fused[2], 0.3, 1e-12);
}

TEST(CombinePosteriors, ProductSharpens) {
  const std::vector<std::vector<double>> ps{{0.5, 0.25, 0.25},
                                            {0.5, 0.25, 0.25}};
  const auto fused = combine_posteriors(ps);
  // 0.25 / (0.25 + 0.0625 + 0.0625) = 2/3.
  EXPECT_NEAR(fused[0], 2.0 / 3.0, 1e-12);
  EXPECT_GT(fused[0], 0.5);
}

TEST(CombinePosteriors, ZeroAnywhereEliminatesCandidate) {
  const std::vector<std::vector<double>> ps{{0.5, 0.5, 0.0},
                                            {0.0, 0.5, 0.5}};
  const auto fused = combine_posteriors(ps);
  EXPECT_DOUBLE_EQ(fused[0], 0.0);
  EXPECT_DOUBLE_EQ(fused[2], 0.0);
  EXPECT_NEAR(fused[1], 1.0, 1e-12);
}

TEST(CombinePosteriors, ManyFactorsStayNormalizedAndFinite) {
  // 200 identical soft factors would underflow in linear space.
  std::vector<std::vector<double>> ps(200, std::vector<double>{0.6, 0.4});
  const auto fused = combine_posteriors(ps);
  EXPECT_NEAR(fused[0] + fused[1], 1.0, 1e-12);
  EXPECT_GT(fused[0], 0.999999);
}

TEST(CombinePosteriors, RejectsBadInput) {
  EXPECT_THROW((void)combine_posteriors({}), contract_violation);
  const std::vector<std::vector<double>> mismatched{{0.5, 0.5}, {1.0}};
  EXPECT_THROW((void)combine_posteriors(mismatched), contract_violation);
  const std::vector<std::vector<double>> contradictory{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW((void)combine_posteriors(contradictory), contract_violation);
}

TEST(Degradation, FirstMessageMatchesSingleShotEntropyScale) {
  // k=1 point should sit near the analytic H* conditioned on honest
  // senders (slightly above H*, which also averages the identified
  // compromised-sender event).
  const system_params sys{30, 1};
  const auto d = path_length_distribution::uniform(1, 8);
  const auto curve = simulate_degradation(sys, {5}, d, 1, 800, true, 7);
  ASSERT_EQ(curve.size(), 1u);
  const double exact = anonymity_degree(sys, d);
  // Conditioning on an honest sender removes the zero-entropy
  // compromised-sender events, so the curve sits slightly *above* H*.
  EXPECT_GT(curve[0].mean_entropy_bits, exact - 1e-9);
  EXPECT_LT(curve[0].mean_entropy_bits, exact + 0.3);
}

TEST(Degradation, ReroutingLeaksMonotonically) {
  const system_params sys{20, 3};
  const auto d = path_length_distribution::uniform(1, 6);
  const auto curve = simulate_degradation(sys, {2, 9, 14}, d, 12, 300, true, 11);
  ASSERT_EQ(curve.size(), 12u);
  // Entropy must fall (strictly over the span) as messages accumulate.
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_LE(curve[k].mean_entropy_bits,
              curve[k - 1].mean_entropy_bits + 0.02)
        << "k=" << k;
  }
  EXPECT_LT(curve.back().mean_entropy_bits,
            curve.front().mean_entropy_bits - 0.5);
  EXPECT_GT(curve.back().identified_fraction,
            curve.front().identified_fraction);
}

TEST(Degradation, StaticPathDoesNotDegrade) {
  const system_params sys{20, 3};
  const auto d = path_length_distribution::uniform(1, 6);
  const auto curve =
      simulate_degradation(sys, {2, 9, 14}, d, 10, 300, false, 13);
  // Same observation repeated: the fused posterior never changes.
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_NEAR(curve[k].mean_entropy_bits, curve[0].mean_entropy_bits, 1e-9);
    EXPECT_NEAR(curve[k].identified_fraction, curve[0].identified_fraction,
                1e-12);
  }
}

TEST(Degradation, DeterministicUnderSeed) {
  const system_params sys{15, 2};
  const auto d = path_length_distribution::uniform(1, 5);
  const auto a = simulate_degradation(sys, {1, 8}, d, 5, 100, true, 42);
  const auto b = simulate_degradation(sys, {1, 8}, d, 5, 100, true, 42);
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(a[k].mean_entropy_bits, b[k].mean_entropy_bits);
}

TEST(Degradation, ValidatesArguments) {
  const system_params sys{15, 1};
  const auto d = path_length_distribution::fixed(3);
  EXPECT_THROW((void)simulate_degradation(sys, {1}, d, 0, 10, true, 1),
               contract_violation);
  EXPECT_THROW((void)simulate_degradation(sys, {1}, d, 5, 0, true, 1),
               contract_violation);
}

}  // namespace
}  // namespace anonpath
