#include "src/anonymity/multi_message.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(CombinePosteriors, SingleFactorIsIdentity) {
  const std::vector<std::vector<double>> ps{{0.1, 0.6, 0.3}};
  const auto fused = combine_posteriors(ps);
  EXPECT_NEAR(fused[0], 0.1, 1e-12);
  EXPECT_NEAR(fused[1], 0.6, 1e-12);
  EXPECT_NEAR(fused[2], 0.3, 1e-12);
}

TEST(CombinePosteriors, ProductSharpens) {
  const std::vector<std::vector<double>> ps{{0.5, 0.25, 0.25},
                                            {0.5, 0.25, 0.25}};
  const auto fused = combine_posteriors(ps);
  // 0.25 / (0.25 + 0.0625 + 0.0625) = 2/3.
  EXPECT_NEAR(fused[0], 2.0 / 3.0, 1e-12);
  EXPECT_GT(fused[0], 0.5);
}

TEST(CombinePosteriors, ZeroAnywhereEliminatesCandidate) {
  const std::vector<std::vector<double>> ps{{0.5, 0.5, 0.0},
                                            {0.0, 0.5, 0.5}};
  const auto fused = combine_posteriors(ps);
  EXPECT_DOUBLE_EQ(fused[0], 0.0);
  EXPECT_DOUBLE_EQ(fused[2], 0.0);
  EXPECT_NEAR(fused[1], 1.0, 1e-12);
}

TEST(CombinePosteriors, ManyFactorsStayNormalizedAndFinite) {
  // 200 identical soft factors would underflow in linear space.
  std::vector<std::vector<double>> ps(200, std::vector<double>{0.6, 0.4});
  const auto fused = combine_posteriors(ps);
  EXPECT_NEAR(fused[0] + fused[1], 1.0, 1e-12);
  EXPECT_GT(fused[0], 0.999999);
}

TEST(CombinePosteriors, TenThousandFactorsRegression) {
  // Underflow audit at large k (the longitudinal regime src/attack opened):
  // 10^4 factors drive per-candidate products to ~e^-7000, far below the
  // smallest subnormal double, so any linear-space accumulation collapses
  // every candidate to 0/0. The log-space path must keep the fused result
  // exact: argmax pinned to the candidate with the largest average log
  // weight, output normalized, and the runner-up's odds matching the
  // closed-form log-odds ratio.
  constexpr std::size_t k = 10000;
  constexpr std::size_t n = 24;
  std::vector<std::vector<double>> ps;
  ps.reserve(k);
  std::vector<double> factor(n);
  for (std::size_t j = 0; j < k; ++j) {
    // Deterministic near-uniform factors with a tiny persistent tilt toward
    // candidate 17 and a j-dependent wobble elsewhere — every entry is
    // small, no entry is zero.
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      factor[i] = 1.0 + 0.02 * ((i * 31 + j * 7) % 11) / 11.0 +
                  (i == 17 ? 0.015 : 0.0);
      sum += factor[i];
    }
    for (double& x : factor) x /= sum;
    ps.push_back(factor);
  }
  const auto fused = combine_posteriors(ps);
  ASSERT_EQ(fused.size(), n);
  double total = 0.0;
  for (double p : fused) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const auto top =
      std::max_element(fused.begin(), fused.end()) - fused.begin();
  EXPECT_EQ(top, 17);
  EXPECT_GT(fused[17], 0.999999) << "10^4 consistent tilts must concentrate";

  // Cross-check one odds ratio against a direct long-double log-space
  // recomputation: the function's output is exact fusion, not just "some
  // large number".
  long double log_odds = 0.0L;
  for (const auto& p : ps)
    log_odds += std::log(static_cast<long double>(p[17])) -
                std::log(static_cast<long double>(p[16]));
  EXPECT_GT(fused[16], 0.0);
  EXPECT_NEAR(std::log(fused[17] / fused[16]),
              static_cast<double>(log_odds), 1e-6);
}

TEST(CombinePosteriors, RejectsBadInput) {
  EXPECT_THROW((void)combine_posteriors({}), contract_violation);
  const std::vector<std::vector<double>> mismatched{{0.5, 0.5}, {1.0}};
  EXPECT_THROW((void)combine_posteriors(mismatched), contract_violation);
  const std::vector<std::vector<double>> contradictory{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW((void)combine_posteriors(contradictory), contract_violation);
}

TEST(Degradation, FirstMessageMatchesSingleShotEntropyScale) {
  // k=1 point should sit near the analytic H* conditioned on honest
  // senders (slightly above H*, which also averages the identified
  // compromised-sender event).
  const system_params sys{30, 1};
  const auto d = path_length_distribution::uniform(1, 8);
  const auto curve = simulate_degradation(sys, {5}, d, 1, 800, true, 7);
  ASSERT_EQ(curve.size(), 1u);
  const double exact = anonymity_degree(sys, d);
  // Conditioning on an honest sender removes the zero-entropy
  // compromised-sender events, so the curve sits slightly *above* H*.
  EXPECT_GT(curve[0].mean_entropy_bits, exact - 1e-9);
  EXPECT_LT(curve[0].mean_entropy_bits, exact + 0.3);
}

TEST(Degradation, ReroutingLeaksMonotonically) {
  const system_params sys{20, 3};
  const auto d = path_length_distribution::uniform(1, 6);
  const auto curve = simulate_degradation(sys, {2, 9, 14}, d, 12, 300, true, 11);
  ASSERT_EQ(curve.size(), 12u);
  // Entropy must fall (strictly over the span) as messages accumulate.
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_LE(curve[k].mean_entropy_bits,
              curve[k - 1].mean_entropy_bits + 0.02)
        << "k=" << k;
  }
  EXPECT_LT(curve.back().mean_entropy_bits,
            curve.front().mean_entropy_bits - 0.5);
  EXPECT_GT(curve.back().identified_fraction,
            curve.front().identified_fraction);
}

TEST(Degradation, StaticPathDoesNotDegrade) {
  const system_params sys{20, 3};
  const auto d = path_length_distribution::uniform(1, 6);
  const auto curve =
      simulate_degradation(sys, {2, 9, 14}, d, 10, 300, false, 13);
  // Same observation repeated: the fused posterior never changes.
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_NEAR(curve[k].mean_entropy_bits, curve[0].mean_entropy_bits, 1e-9);
    EXPECT_NEAR(curve[k].identified_fraction, curve[0].identified_fraction,
                1e-12);
  }
}

TEST(Degradation, DeterministicUnderSeed) {
  const system_params sys{15, 2};
  const auto d = path_length_distribution::uniform(1, 5);
  const auto a = simulate_degradation(sys, {1, 8}, d, 5, 100, true, 42);
  const auto b = simulate_degradation(sys, {1, 8}, d, 5, 100, true, 42);
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(a[k].mean_entropy_bits, b[k].mean_entropy_bits);
}

TEST(Degradation, ValidatesArguments) {
  const system_params sys{15, 1};
  const auto d = path_length_distribution::fixed(3);
  EXPECT_THROW((void)simulate_degradation(sys, {1}, d, 0, 10, true, 1),
               contract_violation);
  EXPECT_THROW((void)simulate_degradation(sys, {1}, d, 5, 0, true, 1),
               contract_violation);
}

}  // namespace
}  // namespace anonpath
