// End-to-end coverage for planned (kpaths) routing through the simulator,
// trace pipeline, and campaign grid: runs deliver and score, replay is
// bit-identical to inline execution, the trace section round-trips (and is
// absent for walk configs, keeping goldens byte-stable), the reader rejects
// inconsistent routing lines, and the campaign axis expands/filters as
// documented.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "src/net/route_plan.hpp"
#include "src/sim/campaign.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"

namespace anonpath::sim {
namespace {

sim_config kpaths_config() {
  sim_config cfg;
  cfg.sys = {30, 3};
  cfg.compromised = spread_compromised(30, 3);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 150;
  cfg.seed = 11;
  cfg.topology.kind = net::topology_kind::random_regular;
  cfg.topology.degree = 4;
  cfg.routing.kind = net::route_select::kpaths;
  cfg.routing.k = 3;
  return cfg;
}

TEST(RouteSim, KpathsRunDeliversAndScores) {
  const sim_report r = run_simulation(kpaths_config());
  EXPECT_EQ(r.submitted, 150u);
  EXPECT_EQ(r.delivered, 150u) << "no faults configured";
  EXPECT_TRUE(std::isfinite(r.empirical_entropy_bits));
  EXPECT_GT(r.empirical_entropy_bits, 0.0);
  EXPECT_GE(r.top1_accuracy, 0.0);
  // Planned routes are loopless: 1 <= hops <= N - 1.
  ASSERT_FALSE(r.hop_histogram.empty());
  EXPECT_EQ(r.hop_histogram[0], 0u) << "kpaths never sends directly";
  EXPECT_LE(r.hop_histogram.size(), 30u);
}

TEST(RouteSim, KpathsOnTheCliqueMaterializesTheGraph) {
  // The default (complete) topology never builds a graph for walk runs;
  // planned runs must, and the shortest clique routes are single-hop
  // exits, so realized hops concentrate at 1 with occasional detours.
  sim_config cfg = kpaths_config();
  cfg.topology = net::topology_config{};
  const sim_report r = run_simulation(cfg);
  EXPECT_EQ(r.delivered, 150u);
  ASSERT_GT(r.hop_histogram.size(), 1u);
  EXPECT_GT(r.hop_histogram[1], 0u);
}

TEST(RouteSim, KpathsRunsAreSeedDeterministic) {
  const sim_report a = run_simulation(kpaths_config());
  const sim_report b = run_simulation(kpaths_config());
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_EQ(a.identified_fraction, b.identified_fraction);
  EXPECT_EQ(a.top1_accuracy, b.top1_accuracy);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());
  EXPECT_EQ(a.hop_histogram, b.hop_histogram);
}

TEST(RouteSim, ReplayMatchesInlineBitForBit) {
  const sim_config cfg = kpaths_config();
  const sim_report inline_run = run_simulation(cfg);
  const sim_report replayed = replay_trace(capture_trace(cfg));
  EXPECT_EQ(inline_run.submitted, replayed.submitted);
  EXPECT_EQ(inline_run.delivered, replayed.delivered);
  EXPECT_EQ(inline_run.empirical_entropy_bits,
            replayed.empirical_entropy_bits);
  EXPECT_EQ(inline_run.empirical_entropy_stderr,
            replayed.empirical_entropy_stderr);
  EXPECT_EQ(inline_run.identified_fraction, replayed.identified_fraction);
  EXPECT_EQ(inline_run.top1_accuracy, replayed.top1_accuracy);
  EXPECT_EQ(inline_run.end_to_end_latency.mean(),
            replayed.end_to_end_latency.mean());
  EXPECT_EQ(inline_run.hop_histogram, replayed.hop_histogram);
}

TEST(RouteSim, TraceRoundTripPreservesRoutingConfig) {
  const sim_trace trace = capture_trace(kpaths_config());
  std::ostringstream os;
  write_trace(trace, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("routing kpaths 3"), std::string::npos);
  std::istringstream is(text);
  const sim_trace back = read_trace(is);
  EXPECT_EQ(back.config.routing, trace.config.routing);
  EXPECT_TRUE(back.config.routing.planned());
  EXPECT_EQ(back.config.routing.k, 3u);
  // Second round trip is byte-identical (canonical rendering).
  std::ostringstream os2;
  write_trace(back, os2);
  EXPECT_EQ(os2.str(), text);
}

TEST(RouteSim, WalkTracesCarryNoRoutingSection) {
  // The additive trace line only appears for planned configs — that is
  // what keeps every historical trace and golden byte-identical.
  sim_config cfg = kpaths_config();
  cfg.routing = net::routing_config{};
  std::ostringstream os;
  write_trace(capture_trace(cfg), os);
  EXPECT_EQ(os.str().find("routing"), std::string::npos);
}

TEST(RouteSim, ReaderRejectsBadRoutingLines) {
  std::ostringstream os;
  write_trace(capture_trace(kpaths_config()), os);
  const std::string text = os.str();
  const auto mutate = [&](const std::string& from, const std::string& to) {
    std::string t = text;
    const auto pos = t.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    t.replace(pos, from.size(), to);
    return t;
  };
  for (const auto& bad :
       {mutate("routing kpaths 3", "routing walk 3"),
        mutate("routing kpaths 3", "routing kpaths 0"),
        mutate("routing kpaths 3", "routing kpaths 65"),
        // Planned routing is source-routed-only; flipping the mode line
        // must be refused even though both lines parse in isolation.
        mutate("mode source_routed", "mode hop_by_hop")}) {
    std::istringstream is(bad);
    EXPECT_THROW((void)read_trace(is), parse_error);
  }
}

TEST(RouteSim, CampaignRoutingAxisExpandsAndFilters) {
  campaign_grid grid;
  grid.node_counts = {20};
  grid.compromised_counts = {2};
  grid.modes = {routing_mode::source_routed, routing_mode::hop_by_hop};
  net::topology_config regular;
  regular.kind = net::topology_kind::random_regular;
  regular.degree = 4;
  grid.topologies = {regular};
  net::routing_config kp;
  kp.kind = net::route_select::kpaths;
  kp.k = 2;
  grid.routings = {net::routing_config{}, kp};
  adversary_config timing;
  timing.kind = adversary_kind::timing_correlator;
  grid.adversaries = {adversary_config{}, timing};
  const auto cells = expand_grid(grid);
  // 2 modes x 2 adversaries x 2 routings = 8 requested. The timing
  // adversary is infeasible on a restricted topology regardless of routing
  // (4 cells), and kpaths is additionally dropped for hop_by_hop (1),
  // leaving walk x {src, hop} plus kpaths x src = 3.
  EXPECT_EQ(grid.cell_count(), 8u);
  ASSERT_EQ(cells.size(), 3u);
  int planned = 0;
  for (const scenario& s : cells) {
    if (!s.routing.planned()) continue;
    ++planned;
    EXPECT_EQ(s.mode, routing_mode::source_routed);
    EXPECT_NE(s.adversary.kind, adversary_kind::timing_correlator);
  }
  EXPECT_EQ(planned, 1);
}

TEST(RouteSim, CampaignCsvGainsRoutingColumnOnlyWhenPlanned) {
  campaign_grid grid;
  grid.node_counts = {16};
  grid.compromised_counts = {2};
  grid.message_count = 60;
  net::topology_config regular;
  regular.kind = net::topology_kind::random_regular;
  regular.degree = 4;
  grid.topologies = {regular};
  campaign_config cfg;
  cfg.replicas = 2;
  cfg.master_seed = 5;

  const campaign_result walk_only = run_campaign(grid, cfg);
  std::ostringstream walk_csv;
  write_csv(walk_only, walk_csv);
  EXPECT_EQ(walk_csv.str().find("routing"), std::string::npos);

  net::routing_config kp;
  kp.kind = net::route_select::kpaths;
  kp.k = 2;
  grid.routings = {net::routing_config{}, kp};
  const campaign_result mixed = run_campaign(grid, cfg);
  std::ostringstream mixed_csv;
  write_csv(mixed, mixed_csv);
  EXPECT_NE(mixed_csv.str().find(",routing"), std::string::npos);
  EXPECT_NE(mixed_csv.str().find("walk"), std::string::npos);
  EXPECT_NE(mixed_csv.str().find("kpaths(2)"), std::string::npos);
  // The walk cell's metrics are identical with and without the new axis —
  // the axis multiplies the grid, it does not perturb existing cells.
  ASSERT_EQ(mixed.cells.size(), 2u);
  ASSERT_EQ(walk_only.cells.size(), 1u);
  EXPECT_EQ(walk_only.cells[0].entropy_bits.mean(),
            mixed.cells[0].entropy_bits.mean());
  EXPECT_EQ(walk_only.cells[0].latency_seconds.mean(),
            mixed.cells[0].latency_seconds.mean());
}

TEST(RouteSim, RetryWithKpathsStaysDeterministic) {
  // Retries draw planned routes from their own order-free stream; the run
  // must stay seed-deterministic and deliver despite drops.
  sim_config cfg = kpaths_config();
  cfg.faults.drop_probability = 0.2;
  cfg.retry.max_retries = 3;
  cfg.retry.timeout = 0.5;
  const sim_report a = run_simulation(cfg);
  const sim_report b = run_simulation(cfg);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.empirical_entropy_bits, b.empirical_entropy_bits);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_GT(a.delivered, 100u);
}

TEST(RouteSim, PlannedRunRejectsInvalidCombinations) {
  sim_config cfg = kpaths_config();
  cfg.mode = routing_mode::hop_by_hop;
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
  cfg = kpaths_config();
  cfg.adversary.kind = adversary_kind::timing_correlator;
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
  cfg = kpaths_config();
  cfg.routing.k = 0;
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
}

}  // namespace
}  // namespace anonpath::sim
