#include "src/stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/stats/chi_square.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/discrete_sampler.hpp"
#include "src/stats/histogram.hpp"

namespace anonpath::stats {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  rng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  rng g(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(g.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  rng g(3);
  EXPECT_THROW((void)g.next_below(0), contract_violation);
}

TEST(Rng, NextIntCoversRangeInclusive) {
  rng g(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(g.next_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformityChiSquare) {
  rng g(12345);
  constexpr std::size_t bins = 16;
  int_histogram h(bins);
  for (int i = 0; i < 160000; ++i)
    h.add(static_cast<std::size_t>(g.next_below(bins)));
  std::vector<double> expected(bins, 1.0 / bins);
  const auto r = chi_square_goodness_of_fit(h.counts(), expected);
  EXPECT_GT(r.p_value, 1e-4) << "statistic=" << r.statistic;
}

TEST(Rng, BernoulliFrequency) {
  rng g(99);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i)
    if (g.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SampleDistinctProducesDistinctValuesExcludingBanned) {
  rng g(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = g.sample_distinct(10, 6, {3});
    std::set<std::uint32_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 6u);
    EXPECT_FALSE(uniq.contains(3));
    for (auto v : sample) EXPECT_LT(v, 10u);
  }
}

TEST(Rng, SampleDistinctFullPool) {
  rng g(5);
  const auto sample = g.sample_distinct(5, 4, {2});
  std::set<std::uint32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq, (std::set<std::uint32_t>{0, 1, 3, 4}));
}

TEST(Rng, SampleDistinctTooManyThrows) {
  rng g(5);
  EXPECT_THROW((void)g.sample_distinct(5, 5, {2}), contract_violation);
}

TEST(Rng, SampleDistinctIsUniformOverArrangements) {
  // All 6 ordered pairs from {0,1,2} \ {} with k=2 should be equally likely.
  rng g(777);
  int_histogram h(9);
  constexpr int n = 90000;
  for (int i = 0; i < n; ++i) {
    const auto s = g.sample_distinct(3, 2, {});
    h.add(s[0] * 3 + s[1]);
  }
  std::vector<double> expected(9, 0.0);
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      if (a != b) expected[a * 3 + b] = 1.0 / 6.0;
  const auto r = chi_square_goodness_of_fit(h.counts(), expected);
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(Rng, SplitProducesIndependentStream) {
  rng a(42);
  rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  discrete_sampler s(w);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.1);
  EXPECT_DOUBLE_EQ(s.probability(3), 0.4);
  rng g(2024);
  int_histogram h(4);
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) h.add(s.sample(g));
  std::vector<double> expected{0.1, 0.2, 0.3, 0.4};
  const auto r = chi_square_goodness_of_fit(h.counts(), expected);
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(DiscreteSampler, HandlesZeroWeightCategories) {
  const std::vector<double> w{0.0, 1.0, 0.0, 1.0};
  discrete_sampler s(w);
  rng g(6);
  for (int i = 0; i < 10000; ++i) {
    const auto k = s.sample(g);
    EXPECT_TRUE(k == 1 || k == 3);
  }
}

TEST(DiscreteSampler, RejectsAllZero) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(discrete_sampler{w}, contract_violation);
}

TEST(DiscreteSampler, RejectsNegative) {
  const std::vector<double> w{0.5, -0.1};
  EXPECT_THROW(discrete_sampler{w}, contract_violation);
}

}  // namespace
}  // namespace anonpath::stats
