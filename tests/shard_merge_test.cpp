// Distributed campaigns: shard/merge conformance. The pinned contract is
// the one the engine already holds across threads, extended across
// processes — any i/n partition of the grid, run shard by shard at any
// thread count, merges back into output bit-identical (CSV and journal
// bytes) to the unsharded run. The other half is loud failure: merges of
// overlapping/missing/foreign/truncated shards throw classified
// parse_errors, and a journal write failure is a thrown io error, never a
// "successful" campaign with dropped cells.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/campaign.hpp"
#include "src/sim/checkpoint.hpp"
#include "src/stats/error.hpp"

namespace anonpath {
namespace {

sim::campaign_grid small_grid() {
  sim::campaign_grid grid;
  grid.node_counts = {16, 24};
  grid.compromised_counts = {1, 2};
  grid.lengths = {path_length_distribution::fixed(3)};
  grid.drop_probabilities = {0.0, 0.15};
  grid.retries = {sim::retry_policy{}, sim::retry_policy{2, 0.2, 2.0, 5.0}};
  grid.message_count = 120;
  return grid;  // 16 cells
}

std::string render(const sim::campaign_result& result) {
  std::ostringstream os;
  sim::write_csv(result, os);
  return os.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A scratch file path unique to the current test.
std::string scratch_path(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "anonpath_" + info->name() + "_" + tag +
         ".ckpt";
}

/// Renders a merged result as the unsharded journal a single-process run
/// would have written (what the CLI's `merge --checkpoint` emits).
std::string render_journal(const sim::campaign_grid& grid,
                           const sim::campaign_config& config,
                           const sim::campaign_result& result) {
  std::ostringstream os;
  sim::write_checkpoint_header(os, sim::campaign_scope(grid, config));
  for (std::uint64_t i = 0; i < result.cells.size(); ++i)
    sim::append_checkpoint_cell(os, i, result.cells[i]);
  return os.str();
}

parse_error_kind merge_failure_kind(const sim::campaign_grid& grid,
                                    const sim::campaign_config& config,
                                    const std::vector<std::string>& paths) {
  try {
    (void)sim::merge_campaign(grid, config, paths);
  } catch (const parse_error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "merge_campaign unexpectedly succeeded";
  return parse_error_kind::io;
}

TEST(ShardCellCount, PartitionsTheGridExactly) {
  for (std::uint64_t total : {0ull, 1ull, 15ull, 16ull, 17ull}) {
    for (std::uint32_t n : {1u, 2u, 3u, 8u, 32u}) {
      std::uint64_t sum = 0;
      for (std::uint32_t i = 0; i < n; ++i)
        sum += sim::shard_cell_count(total, i, n);
      EXPECT_EQ(sum, total) << total << " cells over " << n << " shards";
    }
  }
  EXPECT_EQ(sim::shard_cell_count(16, 0, 3), 6u);
  EXPECT_EQ(sim::shard_cell_count(16, 1, 3), 5u);
  EXPECT_EQ(sim::shard_cell_count(16, 2, 3), 5u);
  EXPECT_EQ(sim::shard_cell_count(3, 7, 8), 0u);
}

TEST(ShardMerge, EveryPartitionMergesBitIdentically) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.master_seed = 77;
  config.threads = 1;
  config.checkpoint_path = scratch_path("unsharded");

  const auto clean = sim::run_campaign(grid, config);
  const std::string clean_csv = render(clean);
  const std::string clean_journal = slurp(config.checkpoint_path);
  ASSERT_EQ(clean.cells.size(), 16u);

  for (std::uint32_t n : {1u, 2u, 3u, 8u}) {
    for (unsigned threads : {1u, 8u}) {
      std::vector<std::string> paths;
      std::uint64_t shard_cells = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        sim::campaign_config shard = config;
        shard.threads = threads;
        shard.shard_index = i;
        shard.shard_count = n;
        shard.checkpoint_path = scratch_path(
            std::to_string(n) + "t" + std::to_string(threads) + "s" +
            std::to_string(i));
        paths.push_back(shard.checkpoint_path);
        const auto part = sim::run_campaign(grid, shard);
        EXPECT_EQ(part.cells.size(), sim::shard_cell_count(16, i, n));
        shard_cells += part.cells.size();
        // A shard's own cells must BE the unsharded run's cells: same
        // summaries bit for bit, fetched by absolute index.
        for (std::uint64_t l = 0; l < part.cells.size(); ++l) {
          const auto& ours = part.cells[l];
          const auto& theirs = clean.cells[i + l * n];
          EXPECT_EQ(ours.submitted, theirs.submitted);
          EXPECT_EQ(ours.delivered_fraction.mean(),
                    theirs.delivered_fraction.mean());
          EXPECT_EQ(ours.entropy_bits.m2(), theirs.entropy_bits.m2());
        }
      }
      EXPECT_EQ(shard_cells, 16u);

      const auto merged = sim::merge_campaign(grid, config, paths);
      EXPECT_EQ(render(merged), clean_csv)
          << n << " shards, " << threads << " thread(s)";
      EXPECT_EQ(render_journal(grid, config, merged), clean_journal)
          << n << " shards, " << threads << " thread(s)";
      EXPECT_EQ(merged.runs, clean.runs);
      EXPECT_EQ(merged.requested_cells, clean.requested_cells);
      for (const std::string& p : paths) std::remove(p.c_str());
    }
  }
  std::remove(config.checkpoint_path.c_str());
}

TEST(ShardMerge, ShardOrderAndInputOrderDoNotMatter) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.master_seed = 9;

  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    sim::campaign_config shard = config;
    shard.shard_index = i;
    shard.shard_count = 3;
    shard.checkpoint_path = scratch_path("s" + std::to_string(i));
    paths.push_back(shard.checkpoint_path);
    (void)sim::run_campaign(grid, shard);
  }
  const std::string forward =
      render(sim::merge_campaign(grid, config, paths));
  const std::vector<std::string> reversed{paths[2], paths[0], paths[1]};
  EXPECT_EQ(render(sim::merge_campaign(grid, config, reversed)), forward);
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(ShardMerge, ShardResumeIsBitIdenticalAtAnyKillPoint) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.master_seed = 31;
  config.shard_index = 1;
  config.shard_count = 3;  // owns absolute cells 1,4,7,10,13 (5 cells)
  config.checkpoint_path = scratch_path("whole");

  const auto whole = sim::run_campaign(grid, config);
  ASSERT_EQ(whole.cells.size(), 5u);
  const std::string whole_csv = render(whole);
  const std::string journal = slurp(config.checkpoint_path);

  // Kill after the shard header line, after 2 records, and mid-append of
  // the final record; every resume (1 and 8 threads) re-renders the bytes.
  std::size_t after_header = 0;
  for (int lines = 0; lines < 3; ++lines)
    after_header = journal.find('\n', after_header) + 1;
  std::size_t after_two = after_header;
  for (int lines = 0; lines < 2; ++lines)
    after_two = journal.find('\n', after_two) + 1;
  int tag = 0;
  for (std::size_t kill :
       {after_header, after_two, journal.size() - 5, journal.size()}) {
    for (unsigned threads : {1u, 8u}) {
      sim::campaign_config resume = config;
      resume.resume = true;
      resume.threads = threads;
      resume.checkpoint_path = scratch_path("k" + std::to_string(tag++));
      {
        std::ofstream out(resume.checkpoint_path, std::ios::binary);
        out << journal.substr(0, kill);
      }
      EXPECT_EQ(render(sim::run_campaign(grid, resume)), whole_csv)
          << "kill at byte " << kill << ", " << threads << " thread(s)";
      EXPECT_EQ(slurp(resume.checkpoint_path), journal);
      std::remove(resume.checkpoint_path.c_str());
    }
  }
  std::remove(config.checkpoint_path.c_str());
}

TEST(ShardMerge, RejectsOverlapMissingForeignAndTruncatedShards) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.master_seed = 4;

  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    sim::campaign_config shard = config;
    shard.shard_index = i;
    shard.shard_count = 3;
    shard.checkpoint_path = scratch_path("s" + std::to_string(i));
    paths.push_back(shard.checkpoint_path);
    (void)sim::run_campaign(grid, shard);
  }

  // Missing shard 2.
  EXPECT_EQ(merge_failure_kind(grid, config, {paths[0], paths[1]}),
            parse_error_kind::mismatch);
  // The same shard twice (overlap).
  EXPECT_EQ(merge_failure_kind(grid, config, {paths[0], paths[1], paths[1]}),
            parse_error_kind::mismatch);
  // Foreign campaign: same shards, different master seed -> scope mismatch.
  sim::campaign_config foreign = config;
  foreign.master_seed = 5;
  EXPECT_EQ(merge_failure_kind(grid, foreign, paths),
            parse_error_kind::mismatch);
  // Shard-count disagreement: a 2-way shard 0 mixed into the 3-way set.
  sim::campaign_config half = config;
  half.shard_index = 0;
  half.shard_count = 2;
  half.checkpoint_path = scratch_path("half");
  (void)sim::run_campaign(grid, half);
  EXPECT_EQ(merge_failure_kind(grid, config,
                               {paths[0], half.checkpoint_path, paths[2]}),
            parse_error_kind::mismatch);
  // Truncated shard: keep the header + one record of shard 2.
  const std::string journal = slurp(paths[2]);
  std::size_t keep = 0;
  for (int lines = 0; lines < 4; ++lines) keep = journal.find('\n', keep) + 1;
  const std::string cut_path = scratch_path("cut");
  {
    std::ofstream out(cut_path, std::ios::binary);
    out << journal.substr(0, keep);
  }
  EXPECT_EQ(merge_failure_kind(grid, config, {paths[0], paths[1], cut_path}),
            parse_error_kind::truncated);
  // A header-only (pre-flush kill) shard is truncated, not silently empty.
  const std::string empty_path = scratch_path("empty");
  {
    std::ofstream out(empty_path, std::ios::binary);
  }
  EXPECT_EQ(merge_failure_kind(grid, config,
                               {paths[0], paths[1], empty_path}),
            parse_error_kind::truncated);
  // An unopenable path is an io error, naming the file.
  const std::string absent = scratch_path("absent");
  std::remove(absent.c_str());
  try {
    (void)sim::merge_campaign(grid, config, {paths[0], paths[1], absent});
    ADD_FAILURE() << "merge of an absent shard succeeded";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::io);
    EXPECT_NE(std::string(e.what()).find(absent), std::string::npos);
  }
  for (const std::string& p : paths) std::remove(p.c_str());
  std::remove(half.checkpoint_path.c_str());
  std::remove(cut_path.c_str());
  std::remove(empty_path.c_str());
}

TEST(ShardMerge, UnshardedResumeRefusesAShardJournal) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 2;
  config.shard_index = 0;
  config.shard_count = 2;
  config.checkpoint_path = scratch_path("shard");
  (void)sim::run_campaign(grid, config);

  sim::campaign_config unsharded = config;
  unsharded.shard_index = 0;
  unsharded.shard_count = 1;
  unsharded.resume = true;
  try {
    (void)sim::run_campaign(grid, unsharded);
    ADD_FAILURE() << "unsharded resume adopted a shard journal";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::mismatch);
  }
  // And the wrong shard identity is refused too.
  sim::campaign_config wrong = config;
  wrong.shard_index = 1;
  wrong.resume = true;
  try {
    (void)sim::run_campaign(grid, wrong);
    ADD_FAILURE() << "shard 1 resume adopted shard 0's journal";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::mismatch);
  }
  std::remove(config.checkpoint_path.c_str());
}

TEST(ShardMerge, JournalWriteFailureThrowsIoInsteadOfDroppingCells) {
  const sim::campaign_grid grid = small_grid();
  sim::campaign_config config;
  config.replicas = 1;

  // Unopenable journal path (a directory that does not exist).
  config.checkpoint_path =
      ::testing::TempDir() + "anonpath_no_such_dir/journal.ckpt";
  try {
    (void)sim::run_campaign(grid, config);
    ADD_FAILURE() << "campaign succeeded with an unopenable journal";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), parse_error_kind::io);
  }

  // A device that accepts the open but fails every flush (ENOSPC). The
  // header flush is checked, so the failure surfaces before any cell runs.
  std::ofstream probe("/dev/full");
  if (probe) {
    probe << 'x';
    probe.flush();
    if (probe.fail()) {  // only meaningful where /dev/full behaves
      config.checkpoint_path = "/dev/full";
      try {
        (void)sim::run_campaign(grid, config);
        ADD_FAILURE() << "campaign succeeded journaling to /dev/full";
      } catch (const parse_error& e) {
        EXPECT_EQ(e.kind(), parse_error_kind::io);
      }
    }
  }
}

}  // namespace
}  // namespace anonpath
