// Determinism and correctness of the batched Monte-Carlo estimation engine:
// thread-count invariance (the mc_config contract), dedup-vs-direct
// agreement, the allocation-free route sampler's distribution, and a fuzz
// pass pitting the memoized posterior fast path against the uncached
// reference.

#include "src/anonymity/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/analytic.hpp"
#include "src/anonymity/observation.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/stats/rng.hpp"

namespace anonpath {
namespace {

std::vector<bool> flags(std::uint32_t n, const std::vector<node_id>& set) {
  std::vector<bool> f(n, false);
  for (node_id c : set) f[c] = true;
  return f;
}

TEST(McParallel, BitIdenticalAcrossThreadCounts) {
  // The headline guarantee: for a fixed (seed, samples, shards, dedup),
  // every thread count produces the same bits.
  const system_params sys{60, 4};
  const std::vector<node_id> comp{3, 17, 33, 49};
  const auto d = path_length_distribution::uniform(1, 12);
  mc_config cfg;
  cfg.shards = 16;
  cfg.threads = 1;
  const auto base = estimate_anonymity_degree(sys, comp, d, 6000, 77, cfg);
  for (unsigned threads : {2u, 3u, 8u}) {
    cfg.threads = threads;
    const auto est = estimate_anonymity_degree(sys, comp, d, 6000, 77, cfg);
    EXPECT_EQ(base.degree, est.degree) << threads << " threads";
    EXPECT_EQ(base.std_error, est.std_error) << threads << " threads";
    EXPECT_EQ(base.distinct_observations, est.distinct_observations)
        << threads << " threads";
  }
}

TEST(McParallel, BitIdenticalAcrossThreadCountsWithoutDedup) {
  const system_params sys{40, 2};
  const std::vector<node_id> comp{5, 21};
  const auto d = path_length_distribution::uniform(1, 8);
  mc_config cfg;
  cfg.shards = 8;
  cfg.dedup = false;
  cfg.threads = 1;
  const auto base = estimate_anonymity_degree(sys, comp, d, 3000, 9, cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    const auto est = estimate_anonymity_degree(sys, comp, d, 3000, 9, cfg);
    EXPECT_EQ(base.degree, est.degree) << threads << " threads";
    EXPECT_EQ(base.std_error, est.std_error) << threads << " threads";
  }
}

TEST(McParallel, DedupMatchesDirectScoring) {
  // Dedup reorders the accumulation (weighted, class order) but scores the
  // same sampled routes; the estimates may differ only in rounding.
  const system_params sys{50, 3};
  const std::vector<node_id> comp{2, 19, 41};
  const auto d = path_length_distribution::uniform(1, 10);
  mc_config with, without;
  with.dedup = true;
  without.dedup = false;
  const auto a = estimate_anonymity_degree(sys, comp, d, 8000, 13, with);
  const auto b = estimate_anonymity_degree(sys, comp, d, 8000, 13, without);
  EXPECT_NEAR(a.degree, b.degree, 1e-9);
  EXPECT_NEAR(a.std_error, b.std_error, 1e-9);
  EXPECT_LT(a.distinct_observations, b.distinct_observations);
}

TEST(McParallel, BatchSizeAffectsOnlyRounding) {
  const system_params sys{50, 3};
  const std::vector<node_id> comp{2, 19, 41};
  const auto d = path_length_distribution::uniform(1, 10);
  mc_config whole, windowed;
  windowed.batch_size = 64;  // many dedup-index windows per shard
  const auto a = estimate_anonymity_degree(sys, comp, d, 8000, 13, whole);
  const auto b = estimate_anonymity_degree(sys, comp, d, 8000, 13, windowed);
  EXPECT_NEAR(a.degree, b.degree, 1e-9);
  // Split classes are re-folded globally: same distinct count either way.
  EXPECT_EQ(a.distinct_observations, b.distinct_observations);
}

TEST(McParallel, ShardCountChangesStreamButNotDistribution) {
  // Different shard counts draw different routes, so estimates differ — but
  // both must straddle the analytic C=1 value.
  const system_params sys{50, 1};
  const auto d = path_length_distribution::uniform(0, 20);
  const double exact = anonymity_degree(sys, d);
  for (std::uint64_t shards : {1ull, 4ull, 64ull}) {
    mc_config cfg;
    cfg.shards = shards;
    const auto est = estimate_anonymity_degree(sys, {7}, d, 20000, 4242, cfg);
    EXPECT_NEAR(est.degree, exact, 5.0 * est.std_error + 1e-6)
        << shards << " shards";
  }
}

TEST(McParallel, RngStreamsAreDecoupled) {
  // stream(seed, i) must not depend on any other stream's consumption.
  stats::rng a = stats::rng::stream(123, 5);
  stats::rng b = stats::rng::stream(123, 6);
  (void)b.next_u64();
  stats::rng a2 = stats::rng::stream(123, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), a2.next_u64());
  // Distinct indices give distinct streams.
  stats::rng c = stats::rng::stream(123, 7);
  stats::rng d = stats::rng::stream(123, 8);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (c.next_u64() != d.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(McParallel, RouteSamplerDrawsValidSimpleRoutes) {
  const std::uint32_t n = 30;
  const auto d = path_length_distribution::uniform(0, 12);
  route_sampler sampler(n, d, path_model::simple);
  stats::rng gen(3);
  double mean_len = 0.0;
  const int trials = 20000;
  std::vector<int> sender_counts(n, 0);
  for (int i = 0; i < trials; ++i) {
    const route& r = sampler.next(gen);
    ASSERT_LT(r.sender, n);
    ++sender_counts[r.sender];
    ASSERT_LE(r.length(), d.max_length());
    mean_len += static_cast<double>(r.length());
    // Simple-path invariant: sender and hops all distinct.
    std::vector<bool> seen(n, false);
    seen[r.sender] = true;
    for (node_id x : r.hops) {
      ASSERT_LT(x, n);
      ASSERT_FALSE(seen[x]);
      seen[x] = true;
    }
  }
  mean_len /= trials;
  EXPECT_NEAR(mean_len, d.mean(), 0.1);
  // Sender must be uniform: every node within 5 sigma of trials/n.
  const double expect = static_cast<double>(trials) / n;
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / n));
  for (std::uint32_t v = 0; v < n; ++v)
    EXPECT_NEAR(sender_counts[v], expect, 5.0 * sigma) << "sender " << v;
}

TEST(McParallel, ObserveIntoMatchesObserve) {
  const std::uint32_t n = 25;
  const std::vector<node_id> comp{1, 8, 14, 22};
  const auto f = flags(n, comp);
  const auto d = path_length_distribution::uniform(0, 10);
  route_sampler sampler(n, d, path_model::simple);
  stats::rng gen(11);
  observation reused;
  std::string key;
  for (int i = 0; i < 500; ++i) {
    const route& r = sampler.next(gen);
    const observation fresh = observe(r, f);
    observe_into(r, f, reused);  // reused buffer must fully reset
    EXPECT_EQ(fresh, reused);
    reused.key_into(key);
    EXPECT_EQ(fresh.key(), key);
  }
}

TEST(McParallel, MemoizedPosteriorMatchesReferenceFuzz) {
  // Fuzz the memoized fast path against the uncached per-candidate
  // reference across systems, compromised sets, and length laws. Repeated
  // queries of the same engine exercise warm-cache hits.
  stats::rng gen(2024);
  for (std::uint32_t c_count : {1u, 3u, 6u}) {
    for (const auto& d : {path_length_distribution::uniform(0, 11),
                          path_length_distribution::fixed(4),
                          path_length_distribution::geometric(0.6, 1, 11)}) {
      const system_params sys{18, c_count};
      std::vector<node_id> comp;
      for (std::uint32_t i = 0; i < c_count; ++i)
        comp.push_back(static_cast<node_id>((i * 18) / c_count + 1));
      const posterior_engine engine(sys, comp, d);
      const auto f = flags(18, comp);
      route_sampler sampler(18, d, path_model::simple);
      for (int i = 0; i < 200; ++i) {
        const observation obs = observe(sampler.next(gen), f);
        const auto fast = engine.sender_posterior(obs);
        const auto ref = engine.sender_posterior_reference(obs);
        ASSERT_EQ(fast.size(), ref.size());
        for (std::size_t k = 0; k < fast.size(); ++k)
          ASSERT_NEAR(fast[k], ref[k], 1e-12)
              << "C=" << c_count << " dist=" << d.label()
              << " obs=" << obs.key() << " node=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace anonpath
