// Streaming online disclosure inference: the incremental accumulator (exact
// and sketch backends) with its merge/shard invariance, the online_attack
// session's bit-identity with offline post-processing, the sketched SDA's
// conformance bounds and memory sublinearity, and the hardened
// sda_attack::from_counts / confidence() regressions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/attack/disclosure.hpp"
#include "src/attack/online.hpp"
#include "src/attack/sda.hpp"
#include "src/attack/sketch_sda.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/error.hpp"
#include "src/workload/cooccurrence.hpp"
#include "src/workload/population.hpp"
#include "src/workload/sketch.hpp"
#include "src/workload/streaming.hpp"

namespace anonpath {
namespace {

workload::population_config stream_config() {
  workload::population_config cfg;
  cfg.seed = 21;
  cfg.user_count = 300;
  cfg.receiver_count = 200;
  cfg.round_count = 80;
  cfg.persistent_pairs = 2;
  cfg.persistent_rate = 0.7;
  cfg.round_size = 8;
  return cfg;
}

/// The adversary's view of round r for the tracked pair, exactly as
/// run_workload_attack derives it.
attack::round_observation observe(const workload::population& pop,
                                  std::uint32_t pair_index, std::uint32_t r) {
  const workload::round_batch batch = pop.round(r);
  const node_id target = pop.pairs()[pair_index].sender;
  attack::round_observation obs;
  obs.target_present =
      std::find(batch.senders.begin(), batch.senders.end(), target) !=
      batch.senders.end();
  obs.receivers = batch.receivers;
  return obs;
}

TEST(StreamBackend, LabelsRoundTrip) {
  for (const workload::stream_backend b :
       {workload::stream_backend::exact, workload::stream_backend::sketch}) {
    const auto parsed =
        workload::parse_stream_backend(workload::stream_backend_label(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(workload::parse_stream_backend("dense").has_value());
}

TEST(StreamingAccumulator, ZeroRoundPopulationIsAnEmptyAccumulationNotAnAbort) {
  // Regression: accumulate_cooccurrence used to hit a contract abort on
  // round_count == 0; empty streams are first-class now.
  workload::population_config cfg = stream_config();
  cfg.round_count = 0;
  EXPECT_TRUE(cfg.valid());
  const workload::population pop(cfg);
  const workload::cooccurrence_result acc =
      workload::accumulate_cooccurrence(pop, {});
  EXPECT_EQ(acc.rounds, 0u);
  EXPECT_EQ(acc.messages, 0u);
  EXPECT_TRUE(acc.global_receiver_counts.empty());
  ASSERT_EQ(acc.per_pair.size(), pop.pairs().size());
  for (const workload::pair_counts& pc : acc.per_pair) {
    EXPECT_EQ(pc.target_rounds, 0u);
    EXPECT_TRUE(pc.target_receiver_counts.empty());
  }
  // The posterior over empty counts is the uniform prior, not a crash.
  const attack::sda_attack atk =
      attack::sda_attack::from_counts(acc, 0, cfg.receiver_count);
  for (double p : atk.posterior())
    EXPECT_DOUBLE_EQ(p, 1.0 / cfg.receiver_count);
}

TEST(StreamingAccumulator, PartialRangesComposeToTheFullAccumulation) {
  const workload::population pop(stream_config());
  const workload::cooccurrence_result reference =
      workload::accumulate_cooccurrence(pop, {});

  // Empty range: a first-class empty accumulator.
  const workload::streaming_accumulator empty =
      workload::accumulate_streaming(pop, 37, 37);
  EXPECT_EQ(empty.rounds(), 0u);
  EXPECT_EQ(empty.messages(), 0u);

  // Uneven disjoint ranges merged in order reproduce the full accumulation.
  std::vector<node_id> senders;
  for (const workload::persistent_pair& p : pop.pairs())
    senders.push_back(p.sender);
  workload::streaming_accumulator merged(senders);
  for (const auto& [lo, hi] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 13}, {13, 13}, {13, 47}, {47, 80}})
    merged.merge(workload::accumulate_streaming(pop, lo, hi));
  EXPECT_EQ(merged.totals(), reference);

  // Sequential one-round ingestion is the same accumulation again.
  workload::streaming_accumulator sequential(senders);
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r)
    sequential.ingest(pop.round(r));
  EXPECT_EQ(sequential.totals(), reference);
}

TEST(StreamingAccumulator, ThreadAndShardInvarianceBothBackends) {
  const workload::population pop(stream_config());
  const workload::cooccurrence_result exact_reference =
      workload::accumulate_cooccurrence(pop, {});
  workload::streaming_config sketch_cfg;
  sketch_cfg.backend = workload::stream_backend::sketch;
  const workload::streaming_accumulator sketch_reference =
      workload::accumulate_streaming(pop, 0, pop.config().round_count,
                                     sketch_cfg);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const std::uint32_t shards : {0u, 3u, 17u}) {
      workload::cooccurrence_config ccfg;
      ccfg.threads = threads;
      ccfg.shard_count = shards;
      EXPECT_EQ(workload::accumulate_streaming(pop, 0,
                                               pop.config().round_count, {},
                                               ccfg)
                    .totals(),
                exact_reference)
          << "exact threads=" << threads << " shards=" << shards;
      const workload::streaming_accumulator sk =
          workload::accumulate_streaming(pop, 0, pop.config().round_count,
                                         sketch_cfg, ccfg);
      EXPECT_EQ(sk.global_sketch(), sketch_reference.global_sketch())
          << "sketch threads=" << threads << " shards=" << shards;
      for (std::uint32_t p = 0; p < pop.pairs().size(); ++p) {
        EXPECT_EQ(sk.target_sketch(p), sketch_reference.target_sketch(p));
        EXPECT_EQ(sk.candidate_sample(p).keys(),
                  sketch_reference.candidate_sample(p).keys())
            << "pair " << p << " threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

TEST(OnlineAttack, SnapshotMatchesADirectEngineAtEveryRound) {
  // The online session must be a pure pass-through: at every stream
  // position its posterior is bit-identical to an engine fed the same
  // observations directly — including loss rounds (empty deliveries).
  const workload::population pop(stream_config());
  for (const attack::attack_kind kind :
       {attack::attack_kind::intersection, attack::attack_kind::sda,
        attack::attack_kind::sequential_bayes}) {
    attack::online_config ocfg;
    ocfg.kind = kind;
    attack::online_attack online(pop.config().receiver_count, ocfg);
    auto direct = attack::make_attack(kind, pop.config().receiver_count);
    for (std::uint32_t r = 0; r < pop.config().round_count; ++r) {
      attack::round_observation obs = observe(pop, 0, r);
      if (r % 11 == 3) obs.receivers.clear();  // retry/loss round
      online.ingest(obs);
      direct->observe_round(obs);
      EXPECT_EQ(online.posterior(), direct->posterior())
          << attack::attack_kind_label(kind) << " round " << r;
    }
  }
}

TEST(OnlineAttack, SdaOnlineEqualsOfflineCountPostprocessing) {
  // The genuine two-path identity: incremental observe_round ingestion vs
  // the sharded offline accumulation rebuilt through from_counts.
  const workload::population pop(stream_config());
  workload::cooccurrence_config ccfg;
  ccfg.threads = 8;
  const workload::cooccurrence_result totals =
      workload::accumulate_cooccurrence(pop, ccfg);
  for (std::uint32_t pair = 0; pair < pop.pairs().size(); ++pair) {
    attack::online_config ocfg;
    attack::online_attack online(pop.config().receiver_count, ocfg);
    for (std::uint32_t r = 0; r < pop.config().round_count; ++r)
      online.ingest(observe(pop, pair, r));
    const attack::sda_attack offline = attack::sda_attack::from_counts(
        totals, pair, pop.config().receiver_count);
    EXPECT_EQ(online.posterior(), offline.posterior()) << "pair " << pair;
  }
}

TEST(OnlineAttack, TrajectoryStrideAndFinalPoint) {
  const workload::population pop(stream_config());
  attack::online_config ocfg;
  ocfg.stride = 7;
  attack::online_attack online(pop.config().receiver_count, ocfg);
  for (std::uint32_t r = 0; r < 24; ++r) online.ingest(observe(pop, 0, r));
  const std::vector<attack::trajectory_point>& traj = online.trajectory();
  ASSERT_EQ(traj.size(), 3u);  // rounds 7, 14, 21
  for (std::size_t i = 0; i < traj.size(); ++i)
    EXPECT_EQ(traj[i].round, 7u * (i + 1));
  // result() appends the current position when it is off-stride.
  const attack::attack_result res = online.result();
  ASSERT_EQ(res.trajectory.size(), 4u);
  EXPECT_EQ(res.trajectory.back().round, 24u);
  EXPECT_EQ(res.rounds, 24u);
  EXPECT_EQ(res.final_posterior, online.posterior());

  // An empty stream still summarizes: one uniform point at round 0.
  attack::online_attack idle(pop.config().receiver_count, ocfg);
  const attack::attack_result nothing = idle.result();
  ASSERT_EQ(nothing.trajectory.size(), 1u);
  EXPECT_EQ(nothing.trajectory.front().round, 0u);
  EXPECT_NEAR(nothing.entropy_bits,
              std::log2(pop.config().receiver_count), 1e-12);
}

TEST(OnlineAttack, RunWorkloadAttackEqualsManualSession) {
  const workload::population pop(stream_config());
  auto engine =
      attack::make_attack(attack::attack_kind::sda, pop.config().receiver_count);
  const attack::attack_result offline =
      attack::run_workload_attack(pop, 1, *engine, 0.99, 5);

  attack::online_config ocfg;
  ocfg.stride = 5;
  attack::online_attack online(pop.config().receiver_count, ocfg);
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r)
    online.ingest(observe(pop, 1, r));
  const attack::attack_result res = online.result();
  EXPECT_EQ(res.final_posterior, offline.final_posterior);
  ASSERT_EQ(res.trajectory.size(), offline.trajectory.size());
  for (std::size_t i = 0; i < res.trajectory.size(); ++i) {
    EXPECT_EQ(res.trajectory[i].round, offline.trajectory[i].round);
    EXPECT_EQ(res.trajectory[i].entropy_bits,
              offline.trajectory[i].entropy_bits);
  }
  EXPECT_EQ(res.identified_round, offline.identified_round);
}

TEST(OnlineAttack, ConfigValidationRejectsIncoherentSessions) {
  attack::online_config bad;
  bad.kind = attack::attack_kind::sequential_bayes;
  bad.backend = workload::stream_backend::sketch;
  EXPECT_FALSE(bad.valid());
  EXPECT_THROW(attack::online_attack(10, bad), contract_violation);
  bad = {};
  bad.stride = 0;
  EXPECT_FALSE(bad.valid());
  bad = {};
  bad.kind = attack::attack_kind::none;
  EXPECT_FALSE(bad.valid());
  bad = {};
  bad.identified_threshold = 1.0;
  EXPECT_FALSE(bad.valid());
}

TEST(SketchSda, FromAccumulatorEqualsOnlineIngestion) {
  const workload::population pop(stream_config());
  workload::streaming_config scfg;
  scfg.backend = workload::stream_backend::sketch;
  workload::cooccurrence_config ccfg;
  ccfg.threads = 8;
  const workload::streaming_accumulator acc = workload::accumulate_streaming(
      pop, 0, pop.config().round_count, scfg, ccfg);
  for (std::uint32_t pair = 0; pair < pop.pairs().size(); ++pair) {
    attack::sketch_sda_attack online(pop.config().receiver_count);
    for (std::uint32_t r = 0; r < pop.config().round_count; ++r)
      online.observe_round(observe(pop, pair, r));
    const attack::sketch_sda_attack sharded =
        attack::sketch_sda_attack::from_accumulator(
            acc, pair, pop.config().receiver_count);
    EXPECT_EQ(sharded.posterior(), online.posterior()) << "pair " << pair;
    EXPECT_EQ(sharded.candidates(), online.candidates()) << "pair " << pair;
    EXPECT_EQ(sharded.target_rounds(), online.target_rounds());
  }
}

TEST(SketchSda, EmptyRoundsAdvanceTheStreamPosition) {
  // Loss rounds carry no counts but must keep the reservoir priorities
  // aligned with the round index, or online ingestion and the sharded
  // accumulator (which indexes by batch.round) would diverge.
  const workload::population pop(stream_config());
  attack::sketch_sda_attack with_loss(pop.config().receiver_count);
  attack::sketch_sda_attack dense(pop.config().receiver_count);
  for (std::uint32_t r = 0; r < 40; ++r) {
    const attack::round_observation obs = observe(pop, 0, r);
    dense.observe_round(obs);
    attack::round_observation lossy;  // empty delivery round
    lossy.target_present = true;
    with_loss.observe_round(lossy);
    with_loss.observe_round(obs);
    with_loss.observe_round(lossy);
  }
  // Same deliveries at different stream positions: both engines retain a
  // valid reservoir, but the positions (hence priorities) differ — the
  // test pins that empty rounds DO advance position (no silent collapse
  // back to the dense numbering after the first loss).
  EXPECT_EQ(dense.target_rounds(), with_loss.target_rounds());
  EXPECT_EQ(with_loss.posterior().size(), dense.posterior().size());
}

TEST(SketchSda, BitIdenticalToExactSdaWhenCollisionFree) {
  // Small instance, default width: the sketches resolve every receiver
  // exactly and the reservoir never saturates, so the posterior must be
  // bit-identical to the dense engine on the same stream.
  workload::population_config cfg = stream_config();
  cfg.receiver_count = 120;
  const workload::population pop(cfg);
  attack::sketch_sda_attack sketched(cfg.receiver_count);
  attack::sda_attack dense(cfg.receiver_count);
  for (std::uint32_t r = 0; r < cfg.round_count; ++r) {
    const attack::round_observation obs = observe(pop, 0, r);
    sketched.observe_round(obs);
    dense.observe_round(obs);
  }
  ASSERT_FALSE(sketched.candidates_saturated());
  EXPECT_EQ(sketched.posterior(), dense.posterior());
}

TEST(SketchSda, EstimatesNeverUndercountAndRespectTheBound) {
  const workload::population pop(stream_config());
  const workload::cooccurrence_result totals =
      workload::accumulate_cooccurrence(pop, {});
  attack::sketch_sda_attack sketched(pop.config().receiver_count);
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r)
    sketched.observe_round(observe(pop, 0, r));
  for (const auto& [receiver, count] : totals.global_receiver_counts) {
    const std::uint64_t est = sketched.estimate_global(receiver);
    EXPECT_GE(est, count) << "count-min must never undercount " << receiver;
    EXPECT_LE(est, count + sketched.error_bound()) << "receiver " << receiver;
  }
  for (const auto& [receiver, count] :
       totals.per_pair[0].target_receiver_counts) {
    EXPECT_GE(sketched.estimate_target(receiver), count);
  }
  // The candidate reservoir must retain the true partner — it co-occurs in
  // every emitting round, so its min-priority survives saturation.
  const std::vector<node_id> cand = sketched.candidates();
  EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(),
                                 pop.pairs()[0].receiver));
}

TEST(SketchSda, MemoryIsIndependentOfTheReceiverPopulation) {
  const attack::sketch_sda_attack small(1000);
  const attack::sketch_sda_attack large(10000000);
  EXPECT_EQ(small.memory_bytes(), large.memory_bytes());
  EXPECT_LT(large.memory_bytes(), std::size_t{1} << 20);
  // The dense engine scales with the population; that is the gap the
  // sketch backend exists to close.
  const attack::sda_attack dense_small(1000);
  const attack::sda_attack dense_large(1000000);
  EXPECT_GT(dense_large.memory_bytes(), dense_small.memory_bytes());
  EXPECT_GT(dense_large.memory_bytes(), large.memory_bytes());
}

TEST(BottomKSample, WeightedOffersAreOrderAndShardInvariant) {
  // The retained set is a pure function of the offered (key, priority)
  // multiset: any split and any order merge to the same sample.
  const std::uint64_t salt = 99;
  workload::bottom_k_sample forward(4, salt);
  workload::bottom_k_sample backward(4, salt);
  workload::bottom_k_sample sharded_a(4, salt);
  workload::bottom_k_sample sharded_b(4, salt);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> offers;
  for (std::uint64_t round = 0; round < 30; ++round)
    for (std::uint64_t slot = 0; slot < 3; ++slot)
      offers.emplace_back((round * 3 + slot) % 11,
                          workload::occurrence_priority(salt, round, slot));
  for (const auto& [k, p] : offers) forward.offer(k, p);
  for (auto it = offers.rbegin(); it != offers.rend(); ++it)
    backward.offer(it->first, it->second);
  for (std::size_t i = 0; i < offers.size(); ++i)
    (i % 2 ? sharded_a : sharded_b).offer(offers[i].first, offers[i].second);
  sharded_a.merge(sharded_b);
  EXPECT_EQ(forward.keys(), backward.keys());
  EXPECT_EQ(forward.keys(), sharded_a.keys());
  EXPECT_TRUE(forward.saturated());  // 11 distinct keys > k = 4
}

/// Builds a small internally-consistent counts fixture from_counts accepts.
workload::cooccurrence_result valid_counts() {
  workload::cooccurrence_result totals;
  totals.rounds = 10;
  totals.messages = 30;
  totals.global_receiver_counts = {{0, 10}, {2, 12}, {4, 8}};
  totals.per_pair.resize(1);
  totals.per_pair[0].target_rounds = 4;
  totals.per_pair[0].target_messages = 12;
  totals.per_pair[0].target_receiver_counts = {{0, 6}, {2, 6}};
  return totals;
}

void expect_rejects(const workload::cooccurrence_result& totals,
                    parse_error_kind kind, const char* what) {
  try {
    (void)attack::sda_attack::from_counts(totals, 0, 5);
    ADD_FAILURE() << what << ": corrupt totals accepted";
  } catch (const parse_error& e) {
    EXPECT_EQ(e.kind(), kind) << what << ": " << e.what();
    EXPECT_EQ(e.source(), "cooccurrence") << what;
  }
}

TEST(SdaFromCounts, AcceptsConsistentTotals) {
  const attack::sda_attack atk =
      attack::sda_attack::from_counts(valid_counts(), 0, 5);
  const std::vector<double> post = atk.posterior();
  double sum = 0.0;
  for (double p : post) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SdaFromCounts, RejectsCorruptTotalsWithTheParseTaxonomy) {
  // Regression: every corruption below used to flow straight into unsigned
  // subtraction (background = global - target wrapping to ~2^64) or a
  // division by zero target rounds; now each is classified and thrown.
  workload::cooccurrence_result t = valid_counts();
  t.global_receiver_counts[1].first = 7;  // id beyond the population
  expect_rejects(t, parse_error_kind::out_of_range, "global id out of range");

  t = valid_counts();
  t.per_pair[0].target_receiver_counts = {{2, 6}, {0, 6}};  // descending
  expect_rejects(t, parse_error_kind::malformed, "non-ascending target rows");

  t = valid_counts();
  t.global_receiver_counts = {{0, 10}, {0, 12}, {4, 8}};  // duplicate id
  expect_rejects(t, parse_error_kind::malformed, "duplicate global row");

  t = valid_counts();
  t.per_pair[0].target_rounds = t.rounds + 1;
  expect_rejects(t, parse_error_kind::mismatch, "target rounds > rounds");

  t = valid_counts();
  t.per_pair[0].target_messages = t.messages + 1;
  expect_rejects(t, parse_error_kind::mismatch, "target messages > messages");

  t = valid_counts();
  t.per_pair[0].target_rounds = 0;  // messages with no rounds: m-bar = x/0
  expect_rejects(t, parse_error_kind::mismatch, "messages with zero rounds");

  t = valid_counts();
  t.per_pair[0].target_receiver_counts[1].second = 13;  // 13 > global 12
  expect_rejects(t, parse_error_kind::mismatch, "target count > global");

  t = valid_counts();
  t.per_pair[0].target_receiver_counts = {{0, 6}, {3, 1}};  // 3 not global
  expect_rejects(t, parse_error_kind::mismatch, "target receiver not global");

  // The trusted-caller precondition stays a contract, not a parse error.
  EXPECT_THROW((void)attack::sda_attack::from_counts(valid_counts(), 1, 5),
               contract_violation);
}

TEST(SdaAttack, ConfidenceIsFiniteUnderDegenerateBackground) {
  // Background so concentrated that the Laplace-smoothed rate rounds to
  // exactly 1.0 in double precision: the null then has zero variance, and
  // the z-score used to divide by zero (NaN/inf). Degenerate evidence must
  // read as zero surprise, not as a non-finite confidence.
  workload::cooccurrence_result totals;
  const std::uint64_t big = 100000000000000000ull;  // 1e17 >> 2^53
  totals.rounds = 2;
  totals.messages = big + 5;
  totals.global_receiver_counts = {{0, big}, {1, 5}};
  totals.per_pair.resize(1);
  totals.per_pair[0].target_rounds = 1;
  totals.per_pair[0].target_messages = 5;
  totals.per_pair[0].target_receiver_counts = {{1, 5}};
  const attack::sda_attack atk = attack::sda_attack::from_counts(totals, 0, 2);
  const std::vector<double> z = atk.confidence();
  for (double v : z)
    EXPECT_TRUE(std::isfinite(v)) << "confidence must never be NaN/inf";
  EXPECT_EQ(z[0], 0.0) << "certain-null receiver carries no surprise";
  EXPECT_GT(z[1], 0.0) << "the actual target receiver stays positive";
}

}  // namespace
}  // namespace anonpath
