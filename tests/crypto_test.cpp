#include "src/crypto/onion.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string_view>

#include "src/crypto/correlation.hpp"
#include "src/crypto/prng_cipher.hpp"

namespace anonpath::crypto {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> out;
  for (char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

TEST(PrngCipher, RoundTrips) {
  prng_cipher c(0xdeadbeef);
  auto data = bytes_of("attack at dawn");
  const auto original = data;
  c.apply(data, 42);
  EXPECT_NE(data, original);
  c.apply(data, 42);
  EXPECT_EQ(data, original);
}

TEST(PrngCipher, DifferentNoncesDiverge) {
  prng_cipher c(1);
  const auto plain = bytes_of("same plaintext, different nonce");
  const auto a = c.transform(plain, 1);
  const auto b = c.transform(plain, 2);
  EXPECT_NE(a, b);
}

TEST(PrngCipher, DifferentKeysDiverge) {
  const auto plain = bytes_of("same plaintext, different key");
  const auto a = prng_cipher(1).transform(plain, 9);
  const auto b = prng_cipher(2).transform(plain, 9);
  EXPECT_NE(a, b);
}

TEST(Onion, PeelsAlongRouteAndOpensAtReceiver) {
  const key_registry keys(0x1234, 16);
  const route r{3, {5, 9, 1}};
  const auto payload = bytes_of("GET /index.html");
  auto env = wrap_onion(r, payload, keys, 1001);

  auto hop1 = peel_onion(5, env, keys, 1001);
  EXPECT_EQ(hop1.next, 9u);
  auto hop2 = peel_onion(9, hop1.inner, keys, 1001);
  EXPECT_EQ(hop2.next, 1u);
  auto hop3 = peel_onion(1, hop2.inner, keys, 1001);
  EXPECT_EQ(hop3.next, receiver_node);
  EXPECT_EQ(open_at_receiver(hop3.inner, keys, 1001), payload);
}

TEST(Onion, SingleHopRoute) {
  const key_registry keys(7, 8);
  const route r{0, {4}};
  const auto payload = bytes_of("x");
  auto env = wrap_onion(r, payload, keys, 5);
  auto hop = peel_onion(4, env, keys, 5);
  EXPECT_EQ(hop.next, receiver_node);
  EXPECT_EQ(open_at_receiver(hop.inner, keys, 5), payload);
}

TEST(Onion, DirectRouteIsReceiverTerminal) {
  const key_registry keys(7, 8);
  const route r{0, {}};
  const auto payload = bytes_of("direct");
  auto env = wrap_onion(r, payload, keys, 6);
  EXPECT_EQ(open_at_receiver(env, keys, 6), payload);
}

TEST(Onion, WrongNodeCannotDecodeMeaningfully) {
  const key_registry keys(7, 16);
  const route r{0, {4, 8}};
  auto env = wrap_onion(r, bytes_of("secret"), keys, 11);
  // Peeling at the wrong node yields garbage next-hop, not the true one
  // (and never the receiver marker by construction of the test fixture).
  const auto wrong = peel_onion(3, env, keys, 11);
  EXPECT_NE(wrong.next, 8u);
}

TEST(Onion, ReceiverTerminalLayerRejectedByPeel) {
  // A receiver-terminal envelope peeled *as if* by a relay holding the
  // receiver key must be refused: relays never see the terminal marker.
  const key_registry keys(7, 8);
  auto direct_env = wrap_onion(route{0, {}}, bytes_of("direct"), keys, 6);
  EXPECT_THROW((void)peel_onion(receiver_node, direct_env, keys, 6),
               std::invalid_argument);
  // Conversely, opening a relay layer at the receiver fails.
  auto relay_env = wrap_onion(route{0, {2}}, bytes_of("p"), keys, 7);
  EXPECT_THROW((void)open_at_receiver(relay_env, keys, 7),
               std::invalid_argument);
}

TEST(Onion, MalformedEnvelopeRejected) {
  const key_registry keys(7, 8);
  onion_envelope tiny{{std::byte{1}, std::byte{2}}};
  EXPECT_THROW((void)peel_onion(0, tiny, keys, 1), std::invalid_argument);
  EXPECT_THROW((void)open_at_receiver(tiny, keys, 1), std::invalid_argument);
}

TEST(Correlation, PlaintextForwardingIsCorrelatable) {
  // Crowds-style: payload forwarded unchanged => trivially correlated
  // (the paper's Sec. 4 correlation assumption).
  const auto p = bytes_of("the same payload on both hops");
  EXPECT_TRUE(payloads_correlate(p, p));
  EXPECT_DOUBLE_EQ(payload_similarity(p, p), 1.0);
}

TEST(Correlation, OnionLayersDefeatPayloadMatching) {
  // The same message's wire bytes on consecutive hops of an onion route
  // share no more similarity than chance (~1/256 per byte).
  const key_registry keys(0xabc, 16);
  const route r{3, {5, 9, 1}};
  std::vector<std::byte> payload(512, std::byte{0x55});
  auto env = wrap_onion(r, payload, keys, 77);
  auto hop1 = peel_onion(5, env, keys, 77);
  EXPECT_FALSE(payloads_correlate(env.data, hop1.inner.data));
  // Compare equal-length prefixes for similarity (layers shrink by 4 bytes).
  const std::size_t n = hop1.inner.data.size();
  EXPECT_LT(payload_similarity({env.data.data(), n},
                               {hop1.inner.data.data(), n}),
            0.05);
}

TEST(Correlation, LengthMismatchNeverCorrelates) {
  const auto a = bytes_of("abc");
  const auto b = bytes_of("abcd");
  EXPECT_FALSE(payloads_correlate(a, b));
  EXPECT_DOUBLE_EQ(payload_similarity(a, b), 0.0);
}

TEST(KeyRegistry, DeterministicAndDistinct) {
  const key_registry keys(99, 32);
  EXPECT_EQ(keys.key_of(5), key_registry(99, 32).key_of(5));
  EXPECT_NE(keys.key_of(5), keys.key_of(6));
  EXPECT_NE(keys.key_of(receiver_node), keys.key_of(0));
}

}  // namespace
}  // namespace anonpath::crypto
