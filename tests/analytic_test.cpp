#include "src/anonymity/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/anonymity/closed_forms.hpp"
#include "src/anonymity/length_distribution.hpp"
#include "src/anonymity/moments.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

constexpr system_params paper_system{100, 1};  // N=100, C=1 as in Sec. 6

TEST(Analytic, DirectSendHasNoAnonymity) {
  // H*_F(0) = 0: the receiver identifies the sender (paper Fig 3b remark).
  EXPECT_DOUBLE_EQ(
      anonymity_degree(paper_system, path_length_distribution::fixed(0)), 0.0);
}

TEST(Analytic, PaperAnchorLengthOneAndTwo) {
  // Short-path effect: F(1) and F(2) have the *same* degree
  // ((N-2)/N) log2(N-2) = 6.48242 bits at N=100.
  const double h1 =
      anonymity_degree(paper_system, path_length_distribution::fixed(1));
  const double h2 =
      anonymity_degree(paper_system, path_length_distribution::fixed(2));
  EXPECT_NEAR(h1, 0.98 * std::log2(98.0), 1e-12);
  EXPECT_NEAR(h1, h2, 1e-12);
  EXPECT_NEAR(h1, 6.4824, 5e-4);  // value readable off the paper's Fig 3(b)
}

TEST(Analytic, PaperAnchorLengthThreeDipsBelowTwo) {
  const double h2 =
      anonymity_degree(paper_system, path_length_distribution::fixed(2));
  const double h3 =
      anonymity_degree(paper_system, path_length_distribution::fixed(3));
  EXPECT_LT(h3, h2);
  EXPECT_NEAR(h3, 0.97 * std::log2(98.0) + 0.01 * std::log2(97.0), 1e-12);
}

TEST(Analytic, PaperAnchorLengthFourJumpsAboveShorter) {
  // Position ambiguity first appears at l = 4 (Fig 3b's high point ~6.502).
  const double h4 =
      anonymity_degree(paper_system, path_length_distribution::fixed(4));
  for (path_length l = 1; l <= 3; ++l) {
    EXPECT_GT(h4, anonymity_degree(paper_system,
                                   path_length_distribution::fixed(l)));
  }
  EXPECT_NEAR(h4, 6.502, 5e-4);
}

TEST(Analytic, LongPathEffectPeakAt51) {
  // Paper Fig 3(a): H* peaks at l = 51 for N=100, C=1, then decreases.
  double best = -1;
  path_length argmax = 0;
  for (path_length l = 0; l <= 99; ++l) {
    const double h =
        anonymity_degree(paper_system, path_length_distribution::fixed(l));
    if (h > best) {
      best = h;
      argmax = l;
    }
  }
  EXPECT_EQ(argmax, 51u);
  EXPECT_NEAR(best, 6.5384, 5e-4);
  // Strictly decreasing beyond the peak (long-path effect).
  double prev = best;
  for (path_length l = 52; l <= 99; ++l) {
    const double h =
        anonymity_degree(paper_system, path_length_distribution::fixed(l));
    EXPECT_LT(h, prev);
    prev = h;
  }
}

TEST(Analytic, UpperBoundLog2N) {
  // Conclusion 4: H* < log2(N) for every strategy.
  const double cap = max_anonymity_degree(paper_system);
  EXPECT_DOUBLE_EQ(cap, std::log2(100.0));
  for (path_length l = 0; l <= 99; ++l) {
    EXPECT_LT(anonymity_degree(paper_system, path_length_distribution::fixed(l)),
              cap);
  }
  EXPECT_LT(anonymity_degree(paper_system, path_length_distribution::uniform(0, 99)),
            cap);
}

TEST(Analytic, BreakdownProbabilitiesSumToOne) {
  for (const auto& d :
       {path_length_distribution::fixed(0), path_length_distribution::fixed(1),
        path_length_distribution::fixed(5), path_length_distribution::fixed(99),
        path_length_distribution::uniform(0, 10),
        path_length_distribution::uniform(3, 99),
        path_length_distribution::geometric(0.8, 1, 99)}) {
    const auto b = anonymity_breakdown(paper_system, d);
    EXPECT_NEAR(b.total_probability(), 1.0, 1e-12) << d.label();
    EXPECT_NEAR(b.degree,
                b.p_absent * b.h_absent + b.p_last * b.h_last +
                    b.p_penultimate * b.h_penultimate + b.p_mid * b.h_mid,
                1e-12);
  }
}

TEST(Analytic, BreakdownEventProbabilitiesMatchFormulas) {
  const auto d = path_length_distribution::uniform(0, 10);
  const auto b = anonymity_breakdown(paper_system, d);
  const auto sig = signature_of(d);
  const double n = 100.0;
  EXPECT_NEAR(b.p_sender_compromised, 1.0 / n, 1e-12);
  EXPECT_NEAR(b.p_absent, (n - 1.0 - sig.mean) / n, 1e-12);
  EXPECT_NEAR(b.p_last, sig.m1() / n, 1e-12);
  EXPECT_NEAR(b.p_penultimate, sig.m2() / n, 1e-12);
  EXPECT_NEAR(b.p_mid, (sig.kappa() + sig.m3()) / n, 1e-12);
}

TEST(Analytic, MomentSufficiencyProperty) {
  // Two very different distributions with identical (p0,p1,p2,mean) must
  // have identical anonymity degree — the structural reduction.
  const auto uniform = path_length_distribution::uniform(3, 11);   // mean 7
  const auto fixed = path_length_distribution::fixed(7);           // mean 7
  const auto two_pt = path_length_distribution::two_point(3, 0.5, 11);
  const double hu = anonymity_degree(paper_system, uniform);
  const double hf = anonymity_degree(paper_system, fixed);
  const double ht = anonymity_degree(paper_system, two_pt);
  EXPECT_NEAR(hu, hf, 1e-12);
  EXPECT_NEAR(hu, ht, 1e-12);
}

TEST(Analytic, RequiresCEqualsOne) {
  const system_params two_compromised{100, 2};
  EXPECT_THROW((void)anonymity_degree(two_compromised,
                                      path_length_distribution::fixed(3)),
               contract_violation);
}

TEST(Analytic, RequiresSupportWithinSimplePathBound) {
  EXPECT_THROW((void)anonymity_degree(system_params{10, 1},
                                      path_length_distribution::fixed(10)),
               contract_violation);
}

TEST(Analytic, RejectsTinySystems) {
  EXPECT_THROW((void)anonymity_degree(system_params{4, 1},
                                      path_length_distribution::fixed(2)),
               contract_violation);
}

TEST(ClosedForms, Theorem1MatchesEngineEverywhere) {
  for (std::uint32_t n : {5u, 6u, 10u, 50u, 100u, 250u}) {
    const system_params sys{n, 1};
    for (path_length l = 0; l <= n - 1; ++l) {
      EXPECT_NEAR(theorem1_fixed_length(n, l),
                  anonymity_degree(sys, path_length_distribution::fixed(l)),
                  1e-11)
          << "N=" << n << " l=" << l;
    }
  }
}

TEST(ClosedForms, Theorem2MatchesTruncatedGeometricForSmallMeans) {
  // Idealized geometric formula vs exact truncated distribution: the
  // truncation mass at N=100 is ~1e-12 for pf=0.75, so values agree tightly.
  for (double pf : {0.25, 0.5, 0.75}) {
    const auto d = path_length_distribution::geometric(pf, 1, 99);
    EXPECT_NEAR(theorem2_geometric(100, pf), anonymity_degree(paper_system, d),
                1e-6)
        << "pf=" << pf;
  }
}

TEST(ClosedForms, Theorem3UniformDependsOnlyOnMean) {
  // For lower bound >= 3, U(a,b) == F((a+b)/2) exactly (paper observation 2).
  EXPECT_NEAR(theorem3_uniform(100, 3, 11), theorem1_fixed_length(100, 7),
              1e-12);
  EXPECT_NEAR(theorem3_uniform(100, 10, 40), theorem1_fixed_length(100, 25),
              1e-12);
  // Half-integral mean: continued formula, must match engine on a two-point
  // realization.
  const double via_closed = theorem3_uniform(100, 3, 10);  // mean 6.5
  const auto two_pt = path_length_distribution::two_point(6, 0.5, 7);
  EXPECT_NEAR(via_closed, anonymity_degree(paper_system, two_pt), 1e-12);
}

TEST(ClosedForms, Theorem3GeneralUniformMatchesEngine) {
  for (path_length a : {0u, 1u, 2u, 3u, 5u}) {
    for (path_length b : {5u, 20u, 60u, 99u}) {
      if (a > b) continue;
      EXPECT_NEAR(theorem3_uniform(100, a, b),
                  anonymity_degree(paper_system,
                                   path_length_distribution::uniform(a, b)),
                  1e-11)
          << "U(" << a << "," << b << ")";
    }
  }
}

TEST(ClosedForms, GeometricDegradesGracefullyAtZeroForward) {
  // pf = 0 means always exactly one hop: F(1).
  EXPECT_NEAR(theorem2_geometric(100, 0.0), theorem1_fixed_length(100, 1),
              1e-9);
}

// Parameterized sweep: fixed-length degree is a smooth single-peak curve in
// the interior (no spurious oscillation) for several system sizes.
class FixedLengthShape : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FixedLengthShape, SinglePeakInInterior) {
  const std::uint32_t n = GetParam();
  const system_params sys{n, 1};
  int direction_changes = 0;
  double prev = anonymity_degree(sys, path_length_distribution::fixed(4));
  bool rising = true;
  for (path_length l = 5; l <= n - 1; ++l) {
    const double h = anonymity_degree(sys, path_length_distribution::fixed(l));
    const bool now_rising = h >= prev;
    if (now_rising != rising) {
      ++direction_changes;
      rising = now_rising;
    }
    prev = h;
  }
  // One rise->fall switch only (after the short-path region l <= 4).
  EXPECT_LE(direction_changes, 1) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(SystemSizes, FixedLengthShape,
                         ::testing::Values(20u, 50u, 100u, 200u));

}  // namespace
}  // namespace anonpath
