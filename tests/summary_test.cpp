#include "src/stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/histogram.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::stats {
namespace {

TEST(RunningSummary, MeanAndVarianceExact) {
  running_summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance is 4; sample variance is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningSummary, SingleSampleHasZeroVariance) {
  running_summary s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningSummary, CiShrinksWithSamples) {
  rng g(1);
  running_summary small, large;
  for (int i = 0; i < 100; ++i) small.add(g.next_double());
  for (int i = 0; i < 10000; ++i) large.add(g.next_double());
  EXPECT_GT(small.ci_half_width(), large.ci_half_width());
}

TEST(RunningSummary, MergeMatchesSequential) {
  rng g(9);
  running_summary all, a, b;
  for (int i = 0; i < 5000; ++i) {
    const double x = g.next_double() * 10 - 5;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningSummary, MergeWithEmpty) {
  running_summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  running_summary b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
}

TEST(Histogram, CountsAndFrequencies) {
  int_histogram h(4);
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.5);
  EXPECT_DOUBLE_EQ(h.frequency(2), 0.0);
  EXPECT_NEAR(h.mean(), (0 + 1 + 1 + 3) / 4.0, 1e-12);
}

TEST(Histogram, GaussianMeanEstimate) {
  // Sum of 12 uniforms - 6 approximates N(0,1); via histogram mean offset.
  rng g(4);
  running_summary s;
  for (int i = 0; i < 20000; ++i) {
    double acc = 0;
    for (int k = 0; k < 12; ++k) acc += g.next_double();
    s.add(acc - 6.0);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

}  // namespace
}  // namespace anonpath::stats
