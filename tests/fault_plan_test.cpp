// Fault-injection layer: outage schedules (explicit crash/repair plans),
// seeded mix-failure episodes, and the unified sim::fault_plan valve. The
// load-bearing properties are determinism (same plan + seed => same
// timetable, same run) and inertness (a default plan perturbs nothing).

#include <gtest/gtest.h>

#include "src/net/outage.hpp"
#include "src/sim/network.hpp"
#include "src/sim/fault_plan.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/contract.hpp"

namespace anonpath {
namespace {

TEST(OutageSchedule, ClosedOpenIntervalsAndMonotoneQueries) {
  net::outage_schedule sched(
      4, {{2, 1.0, 2.0}, {1, 0.5, 1.0}, {1, 5.0, 0.5}});
  EXPECT_TRUE(sched.enabled());
  EXPECT_EQ(sched.interval_count(), 3u);

  EXPECT_FALSE(sched.is_down(1, 0.0));
  EXPECT_TRUE(sched.is_down(1, 0.5));    // closed start
  EXPECT_TRUE(sched.is_down(1, 1.4999));
  EXPECT_FALSE(sched.is_down(1, 1.5));   // open end
  EXPECT_TRUE(sched.is_down(1, 5.2));    // second interval, cursor advanced
  EXPECT_FALSE(sched.is_down(1, 6.0));

  EXPECT_TRUE(sched.is_down(2, 2.9));
  EXPECT_FALSE(sched.is_down(2, 3.0));
  EXPECT_FALSE(sched.is_down(0, 1.0));   // never scheduled
  EXPECT_FALSE(sched.is_down(3, 1.0));
}

TEST(OutageSchedule, OverlappingIntervalsMerge) {
  // [1,3) and [2,5) merge into [1,5); an abutting [5,6) extends it too
  // (closed-open abutment leaves no up-instant between them).
  net::outage_schedule sched(
      2, {{0, 1.0, 2.0}, {0, 2.0, 3.0}, {0, 5.0, 1.0}});
  EXPECT_EQ(sched.interval_count(), 1u);
  for (double t : {1.0, 2.5, 4.9, 5.0, 5.9}) EXPECT_TRUE(sched.is_down(0, t));
  EXPECT_FALSE(sched.is_down(0, 0.99));
  EXPECT_FALSE(sched.is_down(0, 6.0));
}

TEST(OutageSchedule, EmptyScheduleIsInert) {
  net::outage_schedule sched(8, {});
  EXPECT_FALSE(sched.enabled());
  EXPECT_FALSE(sched.is_down(3, 100.0));
}

TEST(OutageSchedule, RejectsInvalidOutages) {
  EXPECT_THROW(net::outage_schedule(4, {{4, 0.0, 1.0}}), contract_violation);
  EXPECT_THROW(net::outage_schedule(4, {{0, -1.0, 1.0}}), contract_violation);
  EXPECT_THROW(net::outage_schedule(4, {{0, 0.0, 0.0}}), contract_violation);
}

TEST(FaultPlan, ValidityAndLabels) {
  sim::fault_plan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.valid());
  EXPECT_EQ(plan.label(), "none");

  plan.drop_probability = 0.1;
  plan.churn = {1.0, 2.0};
  plan.outages = {{3, 0.0, 1.0}, {1, 2.0, 1.0}, {3, 5.0, 1.0}};
  plan.mix_failures = {4, 0.0, 1.5};
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.valid());
  EXPECT_TRUE(plan.valid_for(4));
  EXPECT_FALSE(plan.valid_for(3));  // outage node 3 out of range
  EXPECT_NE(plan.label().find("drop(0.1)"), std::string::npos);
  EXPECT_NE(plan.label().find("crash(3)"), std::string::npos);
  EXPECT_NE(plan.label().find("mixfail(4@auto/1.5)"), std::string::npos);

  sim::fault_plan bad_drop;
  bad_drop.drop_probability = 1.0;  // certain loss is outside the model
  EXPECT_FALSE(bad_drop.valid());

  sim::mix_failure_config bad_mf{3, -1.0, 1.0};
  EXPECT_FALSE(bad_mf.valid());
}

TEST(FaultPlan, MaterializeIsDeterministicInPlanAndSeed) {
  sim::fault_plan plan;
  plan.mix_failures = {6, 10.0, 2.0};
  plan.outages = {{0, 1.0, 1.0}};

  auto a = plan.materialize(8, 42, 0.0);
  auto b = plan.materialize(8, 42, 0.0);
  EXPECT_EQ(a.interval_count(), b.interval_count());
  for (node_id v = 0; v < 8; ++v)
    for (double t = 0.0; t < 12.0; t += 0.25)
      EXPECT_EQ(a.is_down(v, t), b.is_down(v, t)) << v << " @ " << t;

  // A different seed draws a different episode timetable.
  auto c = plan.materialize(8, 43, 0.0);
  bool differs = false;
  for (node_id v = 0; v < 8 && !differs; ++v)
    for (double t = 0.0; t < 12.0 && !differs; t += 0.25)
      differs = a.is_down(v, t) != c.is_down(v, t);
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RetryPolicyValidity) {
  sim::retry_policy off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.valid());
  EXPECT_EQ(off.label(), "none");

  sim::retry_policy p{3, 0.5, 2.0, 8.0};
  EXPECT_TRUE(p.enabled());
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.label(), "retry(3x0.5*2<=8)");

  EXPECT_FALSE((sim::retry_policy{1, 0.0, 2.0, 8.0}).valid());   // timeout
  EXPECT_FALSE((sim::retry_policy{1, 0.5, 0.9, 8.0}).valid());   // backoff
  EXPECT_FALSE((sim::retry_policy{1, 0.5, 2.0, 0.25}).valid());  // cap < t/o
}

sim::sim_config small_config(std::uint64_t seed) {
  sim::sim_config cfg;
  cfg.sys = {20, 2};
  cfg.compromised = spread_compromised(20, 2);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 400;
  cfg.arrival_rate = 100.0;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultPlan, ExplicitOutageStrandsTraffic) {
  // Crash every node's favorite first relay? Simpler: take one node down
  // for the whole run and check (a) some messages strand, (b) the run is
  // deterministic, (c) a crash window past the traffic span is inert.
  sim::sim_config cfg = small_config(11);
  const auto baseline = sim::run_simulation(cfg);
  ASSERT_EQ(baseline.delivered, baseline.submitted);

  cfg.faults.outages = {{5, 0.0, 1e6}};
  const auto crashed = sim::run_simulation(cfg);
  EXPECT_LT(crashed.delivered, crashed.submitted);
  const auto again = sim::run_simulation(cfg);
  EXPECT_EQ(crashed.delivered, again.delivered);
  EXPECT_EQ(crashed.end_to_end_latency.mean(),
            again.end_to_end_latency.mean());
  EXPECT_EQ(crashed.empirical_entropy_bits, again.empirical_entropy_bits);

  // The traffic span is message_count / arrival_rate = 4 s; an outage
  // starting far beyond any queued event changes nothing.
  sim::sim_config late = small_config(11);
  late.faults.outages = {{5, 1e5, 1.0}};
  const auto idle = sim::run_simulation(late);
  EXPECT_EQ(idle.delivered, baseline.delivered);
  EXPECT_EQ(idle.empirical_entropy_bits, baseline.empirical_entropy_bits);
}

TEST(FaultPlan, MixFailureEpisodesAreSeededAndLossy) {
  sim::sim_config cfg = small_config(7);
  cfg.faults.mix_failures = {8, 0.0, 1.0};  // auto horizon = 4 s, heavy
  const auto a = sim::run_simulation(cfg);
  const auto b = sim::run_simulation(cfg);
  EXPECT_LT(a.delivered, a.submitted);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.end_to_end_latency.mean(), b.end_to_end_latency.mean());

  cfg.seed = 8;
  const auto c = sim::run_simulation(cfg);
  EXPECT_NE(a.delivered, c.delivered);  // episodes follow the seed
}

TEST(FaultPlan, NetworkCountsCrashStrandsSeparately) {
  struct sink : sim::message_sink {
    void on_message(node_id, sim::wire_message) override {}
  };
  sink s;
  sim::fault_plan plan;
  plan.outages = {{1, 0.0, 1e6}};
  sim::network net(4, {0.001, 0.0, 0.0}, 5, plan);
  for (node_id i = 0; i < 4; ++i) net.register_node(i, s);
  net.register_receiver(s);
  net.send(0, 1, sim::wire_message{});  // down: stranded, counted
  net.send(0, 2, sim::wire_message{});  // up: queued
  EXPECT_EQ(net.crashed_count(), 1u);
  EXPECT_EQ(net.dropped_count(), 0u);
}

}  // namespace
}  // namespace anonpath
