// Population workload model: determinism, round-batching semantics, sparse
// generation at the 1e5-user x 1e4-round scale target, and the sharded
// co-occurrence accumulator's thread-count invariance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>

#include "src/stats/contract.hpp"
#include "src/workload/cooccurrence.hpp"
#include "src/workload/population.hpp"

namespace anonpath::workload {
namespace {

population_config small_config() {
  population_config cfg;
  cfg.seed = 11;
  cfg.user_count = 200;
  cfg.receiver_count = 150;
  cfg.round_count = 60;
  cfg.persistent_pairs = 3;
  cfg.persistent_rate = 0.7;
  cfg.round_size = 10;
  return cfg;
}

TEST(Workload, PopularityPmfUniformAndZipf) {
  const auto uni = popularity_pmf({popularity_kind::uniform, 1.0}, 8);
  for (double p : uni) EXPECT_DOUBLE_EQ(p, 1.0 / 8.0);

  const auto zipf = popularity_pmf({popularity_kind::zipf, 1.5}, 100);
  double sum = 0.0;
  for (double p : zipf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Strictly rank-decreasing, with the documented power-law ratio.
  for (std::size_t i = 1; i < zipf.size(); ++i) EXPECT_LT(zipf[i], zipf[i - 1]);
  EXPECT_NEAR(zipf[1] / zipf[0], std::pow(2.0, -1.5), 1e-12);
}

TEST(Workload, ConfigValidation) {
  EXPECT_TRUE(small_config().valid());
  population_config bad = small_config();
  bad.persistent_pairs = bad.user_count + 1;
  EXPECT_FALSE(bad.valid());
  EXPECT_THROW(population{bad}, contract_violation);
  bad = small_config();
  bad.round_size = 0;
  EXPECT_FALSE(bad.valid());
  bad = small_config();
  bad.persistent_rate = 1.5;
  EXPECT_FALSE(bad.valid());
  bad = small_config();
  bad.receiver_law = {popularity_kind::zipf, 0.0};
  EXPECT_FALSE(bad.valid());
}

TEST(Workload, PersistentPairsAreDeterministicAndDistinct) {
  const population a(small_config());
  const population b(small_config());
  ASSERT_EQ(a.pairs().size(), 3u);
  EXPECT_EQ(a.pairs(), b.pairs());
  std::set<node_id> senders;
  for (const persistent_pair& p : a.pairs()) {
    EXPECT_LT(p.sender, a.config().user_count);
    EXPECT_LT(p.receiver, a.config().receiver_count);
    senders.insert(p.sender);
  }
  EXPECT_EQ(senders.size(), a.pairs().size()) << "pair senders must be distinct";
}

TEST(Workload, RoundsAreDeterministicAndOrderIndependent) {
  const population pop(small_config());
  // Same round re-materialized, and materialized after other rounds, is
  // identical: round(i) depends only on (seed, i).
  const round_batch first = pop.round(17);
  (void)pop.round(3);
  (void)pop.round(59);
  const round_batch again = pop.round(17);
  EXPECT_EQ(first.senders, again.senders);
  EXPECT_EQ(first.receivers, again.receivers);
  EXPECT_EQ(first.active_pairs, again.active_pairs);
}

TEST(Workload, ThresholdRoundsBatchExactlyRoundSize) {
  const population pop(small_config());
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r) {
    const round_batch b = pop.round(r);
    ASSERT_EQ(b.senders.size(), b.receivers.size());
    EXPECT_EQ(b.senders.size(), pop.config().round_size);
    // The documented ground-truth prefix: active pairs ascending, their
    // messages first and in pair order.
    EXPECT_TRUE(std::is_sorted(b.active_pairs.begin(), b.active_pairs.end()));
    for (std::size_t i = 0; i < b.active_pairs.size(); ++i) {
      const persistent_pair& p = pop.pairs()[b.active_pairs[i]];
      EXPECT_EQ(b.senders[i], p.sender);
      EXPECT_EQ(b.receivers[i], p.receiver);
    }
    for (node_id s : b.senders) EXPECT_LT(s, pop.config().user_count);
    for (node_id v : b.receivers) EXPECT_LT(v, pop.config().receiver_count);
  }
}

TEST(Workload, PersistentRateOneMeansEveryRound) {
  population_config cfg = small_config();
  cfg.persistent_rate = 1.0;
  const population pop(cfg);
  for (std::uint32_t r = 0; r < cfg.round_count; ++r)
    EXPECT_EQ(pop.round(r).active_pairs.size(), cfg.persistent_pairs);
}

TEST(Workload, TimedRoundsDrawPoissonCounts) {
  population_config cfg = small_config();
  cfg.mode = round_mode::timed;
  cfg.arrival_rate = 6.0;
  cfg.round_interval = 1.0;
  cfg.persistent_rate = 0.0;  // background only: counts are pure Poisson
  const population pop(cfg);
  double mean = 0.0;
  for (std::uint32_t r = 0; r < cfg.round_count; ++r)
    mean += static_cast<double>(pop.round(r).senders.size());
  mean /= cfg.round_count;
  // lambda = 6; the 60-round mean has stderr ~ sqrt(6/60) ~ 0.32.
  EXPECT_NEAR(mean, 6.0, 1.5);
}

TEST(Workload, TimedRoundsSupportLargeArrivalRates) {
  // exp(-lambda) underflows past lambda ~ 745, which used to cap timed
  // batches at ~745 messages regardless of the configured rate; the
  // log-space draw must track the mean at workload-scale lambdas.
  population_config cfg = small_config();
  cfg.mode = round_mode::timed;
  cfg.arrival_rate = 2000.0;
  cfg.round_interval = 1.0;
  cfg.persistent_rate = 0.0;
  cfg.round_count = 40;
  const population pop(cfg);
  double mean = 0.0;
  for (std::uint32_t r = 0; r < cfg.round_count; ++r)
    mean += static_cast<double>(pop.round(r).senders.size());
  mean /= cfg.round_count;
  // stderr ~ sqrt(2000/40) ~ 7.
  EXPECT_NEAR(mean, 2000.0, 30.0);
}

TEST(Cooccurrence, MatchesDirectRecount) {
  const population pop(small_config());
  const cooccurrence_result acc = accumulate_cooccurrence(pop, {});

  // Recount serially, straight from the rounds.
  std::uint64_t messages = 0;
  std::map<node_id, std::uint64_t> global;
  std::vector<std::uint64_t> target_rounds(pop.pairs().size(), 0);
  std::vector<std::map<node_id, std::uint64_t>> per_pair(pop.pairs().size());
  for (std::uint32_t r = 0; r < pop.config().round_count; ++r) {
    const round_batch b = pop.round(r);
    messages += b.senders.size();
    for (node_id v : b.receivers) ++global[v];
    for (std::uint32_t p = 0; p < pop.pairs().size(); ++p) {
      const node_id s = pop.pairs()[p].sender;
      if (std::find(b.senders.begin(), b.senders.end(), s) == b.senders.end())
        continue;
      ++target_rounds[p];
      for (node_id v : b.receivers) ++per_pair[p][v];
    }
  }
  EXPECT_EQ(acc.rounds, pop.config().round_count);
  EXPECT_EQ(acc.messages, messages);
  EXPECT_EQ(acc.global_receiver_counts,
            receiver_counts(global.begin(), global.end()));
  ASSERT_EQ(acc.per_pair.size(), pop.pairs().size());
  for (std::uint32_t p = 0; p < pop.pairs().size(); ++p) {
    EXPECT_EQ(acc.per_pair[p].target_rounds, target_rounds[p]);
    EXPECT_EQ(acc.per_pair[p].target_receiver_counts,
              receiver_counts(per_pair[p].begin(), per_pair[p].end()));
  }
}

TEST(Cooccurrence, BitIdenticalAcrossThreadAndShardCounts) {
  population_config cfg = small_config();
  cfg.round_count = 500;
  const population pop(cfg);
  cooccurrence_config base;
  base.threads = 1;
  const cooccurrence_result reference = accumulate_cooccurrence(pop, base);
  for (const unsigned threads : {2u, 8u}) {
    for (const std::uint32_t shards : {0u, 7u, 64u}) {
      cooccurrence_config c;
      c.threads = threads;
      c.shard_count = shards;
      EXPECT_EQ(accumulate_cooccurrence(pop, c), reference)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(Cooccurrence, PopulationScaleTargetCompletesAndCounts) {
  // The acceptance-scale workload: 1e5 users x 1e4 rounds, streamed through
  // the sharded accumulator. Small per-round volume keeps the suite fast;
  // the structure (sparse rounds, per-round streams, sharded merge) is
  // exactly the full-scale path.
  population_config cfg;
  cfg.seed = 424242;
  cfg.user_count = 100000;
  cfg.receiver_count = 100000;
  cfg.round_count = 10000;
  cfg.persistent_pairs = 3;
  cfg.persistent_rate = 0.9;
  cfg.round_size = 8;
  cfg.sender_law = {popularity_kind::zipf, 1.2};
  cfg.receiver_law = {popularity_kind::zipf, 1.0};
  const population pop(cfg);
  cooccurrence_config ccfg;
  ccfg.threads = 8;
  const cooccurrence_result acc = accumulate_cooccurrence(pop, ccfg);
  EXPECT_EQ(acc.rounds, 10000u);
  EXPECT_EQ(acc.messages, 80000u);
  for (std::uint32_t p = 0; p < 3; ++p) {
    // Each pair participates in ~90% of rounds (plus coincidental
    // background sends).
    EXPECT_GT(acc.per_pair[p].target_rounds, 8500u);
    // Its partner is a top co-occurring receiver in its target rounds.
    const node_id partner = pop.pairs()[p].receiver;
    const auto& counts = acc.per_pair[p].target_receiver_counts;
    const auto it = std::lower_bound(
        counts.begin(), counts.end(),
        std::make_pair(partner, std::uint64_t{0}));
    ASSERT_TRUE(it != counts.end() && it->first == partner);
    // At least one partner delivery per emitting round (~90% of rounds).
    EXPECT_GT(it->second, 8500u);
  }
}

}  // namespace
}  // namespace anonpath::workload
