// The pluggable adversary-model family: full_coalition must reproduce the
// historical monitor bit for bit, partial_coverage must honor its coverage
// draw and honest-receiver mode, the timing correlator must reconstruct
// chains from timestamps alone, and the campaign's adversary axis must stay
// thread-count invariant. Plus the identified-threshold boundary.

#include "src/sim/adversary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/anonymity/multi_message.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/crypto/correlation.hpp"
#include "src/sim/campaign.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

sim_config small_config(adversary_kind kind) {
  sim_config cfg;
  cfg.sys = {24, 3};
  cfg.compromised = spread_compromised(24, 3);
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 150;
  cfg.seed = 17;
  cfg.adversary.kind = kind;
  return cfg;
}

TEST(AdversaryConfig, LabelsAreStable) {
  EXPECT_STREQ(adversary_kind_label(adversary_kind::full_coalition),
               "full_coalition");
  adversary_config cfg;
  EXPECT_EQ(cfg.label(), "full_coalition");
  cfg.kind = adversary_kind::partial_coverage;
  cfg.coverage_fraction = 0.25;
  EXPECT_EQ(cfg.label(), "partial(f=0.25)");
  cfg.receiver_compromised = false;
  EXPECT_EQ(cfg.label(), "partial(f=0.25;honest_r)");
  cfg.kind = adversary_kind::timing_correlator;
  EXPECT_EQ(cfg.label(), "timing_correlator");
}

TEST(AdversaryConfig, ValidatesCoverageFraction) {
  adversary_config cfg;
  cfg.coverage_fraction = 1.5;
  EXPECT_FALSE(cfg.valid());
  EXPECT_THROW((void)effective_compromised(cfg, 10, {}, 1),
               contract_violation);
}

TEST(EffectiveCompromised, FullCoalitionUsesConfiguredList) {
  const adversary_config cfg;  // full coalition
  const auto flags = effective_compromised(cfg, 10, {2, 7}, 99);
  EXPECT_EQ(flags, (std::vector<bool>{false, false, true, false, false, false,
                                      false, true, false, false}));
}

TEST(EffectiveCompromised, PartialDrawIsSeededAndMatchesFraction) {
  adversary_config cfg;
  cfg.kind = adversary_kind::partial_coverage;
  cfg.coverage_fraction = 0.3;
  const auto a = effective_compromised(cfg, 4000, {}, 5);
  const auto b = effective_compromised(cfg, 4000, {}, 5);
  EXPECT_EQ(a, b) << "draw must be deterministic in the seed";
  const auto c = effective_compromised(cfg, 4000, {}, 6);
  EXPECT_NE(a, c) << "different seeds should give different draws";
  std::size_t count = 0;
  for (bool f : a) count += f ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count) / 4000.0, 0.3, 0.03);
  // Extremes are exact.
  cfg.coverage_fraction = 0.0;
  for (bool f : effective_compromised(cfg, 100, {}, 5)) EXPECT_FALSE(f);
  cfg.coverage_fraction = 1.0;
  for (bool f : effective_compromised(cfg, 100, {}, 5)) EXPECT_TRUE(f);
}

TEST(PartialCoverage, HonestReceiverYieldsReceiverlessObservations) {
  // Path 3 -> 1(comp) -> 0 -> R, receiver honest: only node 1's capture.
  partial_coverage_model model({false, true, false, false}, false);
  model.note_relay(7, 1.0, 1, 3, 0);
  model.note_receipt(7, 2.0, 0);  // honest receiver: ignored
  ASSERT_TRUE(model.complete(7));
  const auto obs = model.assemble(7);
  EXPECT_FALSE(obs.receiver_observed);
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);
  // A message that touched no compromised relay is invisible.
  model.note_receipt(8, 3.0, 2);
  EXPECT_FALSE(model.complete(8));
  EXPECT_THROW((void)model.assemble(8), std::out_of_range);
  EXPECT_EQ(model.observed_messages(), std::vector<std::uint64_t>{7});
}

TEST(PartialCoverage, CompromisedReceiverBehavesLikeFullCoalition) {
  const std::vector<bool> flags{false, true, false, false};
  partial_coverage_model partial(flags, true);
  full_coalition_model full(flags);
  for (auto* m : {static_cast<adversary_model*>(&partial),
                  static_cast<adversary_model*>(&full)}) {
    m->note_relay(7, 1.0, 1, 3, 0);
    m->note_receipt(7, 2.0, 0);
  }
  EXPECT_EQ(partial.assemble(7), full.assemble(7));
  EXPECT_EQ(partial.observed_messages(), full.observed_messages());
}

TEST(PartialCoverage, ObservationsAreGaplessAndEngineReady) {
  // Simulator-produced partial observations must always be scorable by an
  // engine built on the drawn set.
  sim_config cfg = small_config(adversary_kind::partial_coverage);
  cfg.adversary.coverage_fraction = 0.25;
  cfg.adversary.receiver_compromised = false;
  const auto report = run_simulation(cfg);
  EXPECT_GT(report.delivered, 0u);
  // Honest receiver: entropy exists as long as anything was observed.
  EXPECT_TRUE(std::isfinite(report.empirical_entropy_bits));
}

TEST(TimingCorrelation, ScoresPeakAtExpectedLatency) {
  using crypto::timing_correlation;
  EXPECT_DOUBLE_EQ(timing_correlation(0.0, 0.015, 0.01, 0.02), 1.0);
  EXPECT_GT(timing_correlation(0.0, 0.012, 0.01, 0.02), 0.0);
  EXPECT_LT(timing_correlation(0.0, 0.012, 0.01, 0.02),
            timing_correlation(0.0, 0.014, 0.01, 0.02));
  EXPECT_EQ(timing_correlation(0.0, 0.05, 0.01, 0.02), 0.0);
  EXPECT_EQ(timing_correlation(0.0, 0.005, 0.01, 0.02), 0.0);
  EXPECT_EQ(timing_correlation(0.02, 0.01, 0.0, 1.0), 0.0) << "causality";
  // Degenerate (jitter-free) window: the exact delay still correlates.
  EXPECT_GT(timing_correlation(0.0, 0.01, 0.01, 0.01), 0.99);
}

TEST(TimingCorrelator, LinksAnAdjacentChainByTimestampsAlone) {
  // Path s=4 -> 1 -> 2 -> R with 1, 2 compromised; per-step delay =
  // processing + base = 0.01, no jitter. The correlator must rebuild
  // [4, 1, 2, R] without ever using the message id for linking.
  latency_params lat{0.008, 0.0, 0.002};
  timing_correlator_model model({false, true, true, false, false}, lat);
  model.note_relay(42, 0.010, 1, 4, 2);
  model.note_relay(42, 0.020, 2, 1, receiver_node);
  model.note_receipt(42, 0.030, 2);
  ASSERT_TRUE(model.complete(42));
  const auto obs = model.assemble(42);
  EXPECT_TRUE(obs.gapped);
  EXPECT_TRUE(obs.receiver_observed);
  EXPECT_EQ(obs.receiver_predecessor, 2u);
  ASSERT_EQ(obs.reports.size(), 2u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);
  EXPECT_EQ(obs.reports[1].reporter, 2u);
}

TEST(TimingCorrelator, DistantCapturesStayUnlinked) {
  // Same topology but the capture is far outside the delay window: the
  // chain must stop at the receiver-adjacent capture.
  latency_params lat{0.008, 0.0, 0.002};
  timing_correlator_model model({false, true, true, false, false}, lat);
  model.note_relay(42, 0.010, 1, 4, 2);
  model.note_relay(42, 0.500, 2, 1, receiver_node);  // 490ms gap: unlinkable
  model.note_receipt(42, 0.510, 2);
  const auto obs = model.assemble(42);
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].reporter, 2u);
}

TEST(TimingCorrelator, SimulatorRunIsWeakerThanFullCoalition) {
  // Same compromised set, same traffic: timing-only linking can only lose
  // information relative to the correlation-handle coalition.
  const auto full = run_simulation(small_config(adversary_kind::full_coalition));
  const auto timing =
      run_simulation(small_config(adversary_kind::timing_correlator));
  EXPECT_GE(timing.empirical_entropy_bits,
            full.empirical_entropy_bits - 1e-9);
  // The physics of the run are identical either way.
  EXPECT_EQ(timing.delivered, full.delivered);
  EXPECT_EQ(timing.hop_histogram, full.hop_histogram);
}

TEST(Simulator, FullCoalitionIsDefaultAndByteStable) {
  // The refactor contract: a config that never mentions adversary_config
  // behaves exactly as the pre-refactor simulator. Pin a few digest values
  // so any accidental divergence (rng order, scoring order) trips loudly.
  const auto r = run_simulation(small_config(adversary_kind::full_coalition));
  const auto r2 = run_simulation(small_config(adversary_kind::full_coalition));
  EXPECT_EQ(r.delivered, r2.delivered);
  EXPECT_EQ(r.empirical_entropy_bits, r2.empirical_entropy_bits);
  EXPECT_EQ(r.identified_fraction, r2.identified_fraction);
  EXPECT_EQ(r.top1_accuracy, r2.top1_accuracy);
}

TEST(Simulator, HopHistogramMatchesRealizedHopsSummary) {
  const auto r = run_simulation(small_config(adversary_kind::full_coalition));
  std::uint64_t total = 0;
  double weighted = 0.0;
  for (std::size_t h = 0; h < r.hop_histogram.size(); ++h) {
    total += r.hop_histogram[h];
    weighted += static_cast<double>(h * r.hop_histogram[h]);
  }
  EXPECT_EQ(total, r.delivered);
  EXPECT_NEAR(weighted / static_cast<double>(total), r.realized_hops.mean(),
              1e-12);
}

TEST(IdentifiedThreshold, BoundaryIsStrict) {
  // With every relay and the sender's whole neighborhood compromised, many
  // posteriors are exact point masses (mass 1.0): a threshold of exactly
  // 1.0 must not count them (strict >), while anything below must.
  sim_config cfg;
  cfg.sys = {6, 5};
  cfg.compromised = spread_compromised(6, 5);
  cfg.lengths = path_length_distribution::fixed(1);
  cfg.message_count = 60;
  cfg.seed = 3;

  cfg.identified_threshold = 1.0;
  const auto at_one = run_simulation(cfg);
  EXPECT_EQ(at_one.identified_fraction, 0.0);

  cfg.identified_threshold = 0.999999;
  const auto below_one = run_simulation(cfg);
  EXPECT_GT(below_one.identified_fraction, 0.9);

  cfg.identified_threshold = 0.0;
  const auto at_zero = run_simulation(cfg);
  EXPECT_EQ(at_zero.identified_fraction, 1.0) << "every max beats 0";

  // Monotone: higher thresholds can only identify fewer messages.
  cfg.identified_threshold = 0.5;
  const auto mid = run_simulation(cfg);
  EXPECT_GE(at_zero.identified_fraction, mid.identified_fraction);
  EXPECT_GE(mid.identified_fraction, at_one.identified_fraction);
}

TEST(IdentifiedThreshold, DefaultMatchesHistoricalConstant) {
  const sim_config cfg;
  EXPECT_DOUBLE_EQ(cfg.identified_threshold, 0.99);
  const campaign_grid grid;
  EXPECT_DOUBLE_EQ(grid.identified_threshold, 0.99);
}

TEST(IdentifiedThreshold, MultiMessageDegradationHonorsIt) {
  const system_params sys{12, 2};
  const std::vector<node_id> comp{0, 6};
  const auto d = path_length_distribution::uniform(1, 4);
  // Strict boundary: at threshold 1.0 nothing is ever "identified"; the
  // default keeps the historical curve.
  const auto never =
      simulate_degradation(sys, comp, d, 6, 20, true, 11, 1.0);
  for (const auto& p : never) EXPECT_EQ(p.identified_fraction, 0.0);
  const auto always =
      simulate_degradation(sys, comp, d, 6, 20, true, 11, 0.0);
  for (const auto& p : always) EXPECT_EQ(p.identified_fraction, 1.0);
  const auto dflt = simulate_degradation(sys, comp, d, 6, 20, true, 11);
  const auto explicit99 =
      simulate_degradation(sys, comp, d, 6, 20, true, 11, 0.99);
  for (std::size_t k = 0; k < dflt.size(); ++k)
    EXPECT_EQ(dflt[k].identified_fraction, explicit99[k].identified_fraction);
}

TEST(CampaignAdversaryAxis, ExpandsAndStaysThreadInvariant) {
  campaign_grid grid;
  grid.node_counts = {20};
  grid.compromised_counts = {2};
  grid.lengths = {path_length_distribution::fixed(3)};
  adversary_config partial;
  partial.kind = adversary_kind::partial_coverage;
  partial.coverage_fraction = 0.2;
  adversary_config timing;
  timing.kind = adversary_kind::timing_correlator;
  grid.adversaries = {adversary_config{}, partial, timing};
  grid.message_count = 60;

  const auto cells = expand_grid(grid);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].adversary.kind, adversary_kind::full_coalition);
  EXPECT_EQ(cells[1].adversary.kind, adversary_kind::partial_coverage);
  EXPECT_EQ(cells[2].adversary.kind, adversary_kind::timing_correlator);

  campaign_config cfg;
  cfg.replicas = 3;
  cfg.master_seed = 5;
  cfg.threads = 1;
  const auto serial = run_campaign(grid, cfg);
  cfg.threads = 8;
  const auto parallel = run_campaign(grid, cfg);
  std::ostringstream a, b;
  write_csv(serial, a);
  write_csv(parallel, b);
  EXPECT_EQ(a.str(), b.str());
  // The adversary column is part of the rendering.
  EXPECT_NE(a.str().find("partial(f=0.2)"), std::string::npos);
  EXPECT_NE(a.str().find("timing_correlator"), std::string::npos);
}

}  // namespace
}  // namespace anonpath::sim
