#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/sim/adversary.hpp"
#include "src/sim/latency.hpp"
#include "src/sim/network.hpp"
#include "src/sim/receiver.hpp"
#include "src/sim/relay.hpp"
#include "src/sim/workload.hpp"
#include "src/stats/contract.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace anonpath::sim {
namespace {

TEST(Latency, SamplesWithinConfiguredRange) {
  latency_model m({0.010, 0.005, 0.002}, stats::rng(1));
  for (int i = 0; i < 1000; ++i) {
    const double d = m.link_delay();
    EXPECT_GE(d, 0.010);
    EXPECT_LT(d, 0.015);
  }
  EXPECT_DOUBLE_EQ(m.processing_delay(), 0.002);
}

TEST(Latency, RejectsNegativeParams) {
  EXPECT_THROW(latency_model({-0.1, 0.0, 0.0}, stats::rng(1)),
               contract_violation);
}

TEST(Workload, PoissonArrivalsAreOrderedAndComplete) {
  stats::rng g(3);
  const auto w = poisson_workload(50, 100.0, 500, g);
  ASSERT_EQ(w.size(), 500u);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GT(w[i].at, w[i - 1].at);
    EXPECT_LT(w[i].sender, 50u);
  }
  // Ids unique, starting at 1.
  EXPECT_EQ(w.front().msg_id, 1u);
  EXPECT_EQ(w.back().msg_id, 500u);
}

TEST(Workload, MeanInterArrivalMatchesRate) {
  stats::rng g(8);
  const auto w = poisson_workload(10, 200.0, 20000, g);
  const double span = w.back().at - w.front().at;
  const double mean_gap = span / static_cast<double>(w.size() - 1);
  EXPECT_NEAR(mean_gap, 1.0 / 200.0, 0.0002);
}

TEST(Network, DeliversWithLatency) {
  network net(4, {0.010, 0.0, 0.0}, 7);
  const crypto::key_registry keys(1, 4);
  adversary_monitor monitor(std::vector<bool>(4, false));
  receiver_endpoint recv(net, keys, &monitor);
  net.register_receiver(recv);

  onion_relay r0(0, net, keys, 0.0, false, &monitor);
  net.register_node(0, r0);
  onion_relay r1(1, net, keys, 0.0, false, &monitor);
  net.register_node(1, r1);  // send() requires the sender registered too

  // Single-hop onion: sender 1 -> relay 0 -> R.
  const route path{1, {0}};
  wire_message msg;
  msg.id = 42;
  msg.envelope = crypto::wrap_onion(path, {}, keys, 42);
  net.originate(1, 0.0, 42);
  net.send(1, 0, std::move(msg));
  EXPECT_TRUE(net.queue().run_until_empty());
  EXPECT_EQ(recv.delivered_count(), 1u);
  // Two links of exactly 10ms each (no jitter, no processing).
  EXPECT_NEAR(recv.deliveries().at(42).at, 0.020, 1e-12);
  EXPECT_TRUE(net.traces().at(42).delivered);
  EXPECT_EQ(net.traces().at(42).visited, (std::vector<node_id>{0}));
}

TEST(Network, RejectsUnregisteredTargets) {
  // Both endpoints of a transmission must be registered — send() asserts
  // the documented precondition instead of dereferencing a null sink.
  network net(4, {}, 7);
  const crypto::key_registry keys(1, 4);
  onion_relay r0(0, net, keys, 0.0, false, nullptr);
  net.register_node(0, r0);
  wire_message msg;
  // Registered sender, unregistered destination.
  EXPECT_THROW(net.send(0, 2, wire_message{}), contract_violation);
  // Unregistered sender.
  EXPECT_THROW(net.send(3, 0, wire_message{}), contract_violation);
  // Registered sender, unregistered receiver endpoint.
  EXPECT_THROW(net.send(0, receiver_node, std::move(msg)), contract_violation);
}

TEST(Network, RejectsDuplicateRegistration) {
  network net(4, {}, 7);
  const crypto::key_registry keys(1, 4);
  onion_relay r0(0, net, keys, 0.0, false, nullptr);
  net.register_node(0, r0);
  EXPECT_THROW(net.register_node(0, r0), contract_violation);
}

TEST(AdversaryMonitor, AssemblesTimeSortedObservation) {
  adversary_monitor monitor({false, true, false, true, false});
  monitor.note_relay(9, 3.0, 3, 2, 4);   // later capture filed first
  monitor.note_relay(9, 1.0, 1, 0, 2);
  monitor.note_receipt(9, 5.0, 4);
  ASSERT_TRUE(monitor.complete(9));
  const auto obs = monitor.assemble(9);
  ASSERT_EQ(obs.reports.size(), 2u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);  // time-sorted
  EXPECT_EQ(obs.reports[1].reporter, 3u);
  EXPECT_EQ(obs.receiver_predecessor, 4u);
  EXPECT_FALSE(obs.origin.has_value());
}

TEST(AdversaryMonitor, TracksOrigin) {
  adversary_monitor monitor({true, false});
  monitor.note_origin(1, 0);
  monitor.note_receipt(1, 1.0, 0);
  const auto obs = monitor.assemble(1);
  ASSERT_TRUE(obs.origin.has_value());
  EXPECT_EQ(*obs.origin, 0u);
}

TEST(AdversaryMonitor, IncompleteMessagesRejected) {
  adversary_monitor monitor({true, false});
  monitor.note_relay(5, 1.0, 0, 1, receiver_node);
  EXPECT_FALSE(monitor.complete(5));
  EXPECT_THROW((void)monitor.assemble(5), std::out_of_range);
  EXPECT_TRUE(monitor.delivered_messages().empty());
}

TEST(AdversaryMonitor, HonestNodeCannotReport) {
  adversary_monitor monitor({false, true});
  EXPECT_THROW(monitor.note_relay(1, 0.0, 0, 1, receiver_node),
               contract_violation);
  EXPECT_THROW(monitor.note_origin(1, 0), contract_violation);
}

TEST(OnionRelayChain, FullRouteDeliversAndLogsCompromisedHops) {
  // Route 2 -> 0 -> 1 -> 3 -> R with node 1 compromised.
  const std::vector<bool> comp{false, true, false, false};
  network net(4, {0.001, 0.0, 0.0}, 9);
  const crypto::key_registry keys(5, 4);
  adversary_monitor monitor(comp);
  receiver_endpoint recv(net, keys, &monitor);
  net.register_receiver(recv);
  std::vector<std::unique_ptr<onion_relay>> relays;
  for (node_id i = 0; i < 4; ++i) {
    relays.push_back(
        std::make_unique<onion_relay>(i, net, keys, 0.0, comp[i], &monitor));
    net.register_node(i, *relays[i]);
  }

  const route path{2, {0, 1, 3}};
  wire_message msg;
  msg.id = 77;
  msg.envelope = crypto::wrap_onion(path, {}, keys, 77);
  net.originate(2, 0.0, 77);
  net.send(2, 0, std::move(msg));
  EXPECT_TRUE(net.queue().run_until_empty());

  EXPECT_EQ(recv.delivered_count(), 1u);
  const auto obs = monitor.assemble(77);
  ASSERT_EQ(obs.reports.size(), 1u);
  EXPECT_EQ(obs.reports[0].reporter, 1u);
  EXPECT_EQ(obs.reports[0].predecessor, 0u);
  EXPECT_EQ(obs.reports[0].successor, 3u);
  EXPECT_EQ(obs.receiver_predecessor, 3u);

  // The monitor's observation must equal the oracle `observe` on the
  // ground-truth route — the simulation and the model agree.
  EXPECT_EQ(obs, observe(path, comp));
}

}  // namespace
}  // namespace anonpath::sim
