// Cross-engine conformance: every estimation engine in the library pinned
// to the exhaustive brute-force oracle on small systems — Monte-Carlo
// within its sampling error for every surveyed protocol preset, the
// analytic C=1 engine and the Theorem 1-3 closed forms to near machine
// precision, the general posterior engine event by event, and the cyclic
// oracle wherever the two path models provably coincide.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "src/anonymity/api.hpp"
#include "src/net/graph_oracle.hpp"
#include "src/net/topology_posterior.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/trace.hpp"

namespace anonpath {
namespace {

double oracle(std::uint32_t n, const std::vector<node_id>& comp,
              const path_length_distribution& d) {
  return brute_force_analyzer(
             system_params{n, static_cast<std::uint32_t>(comp.size())}, comp, d)
      .anonymity_degree();
}

TEST(Conformance, MonteCarloMatchesBruteForceOnEverySurveyPreset) {
  // N=8 keeps the oracle exact while every preset (fixed, geometric,
  // two-point) fits the simple-path support cap of N-1=7.
  const system_params sys{8, 2};
  const std::vector<node_id> comp{2, 6};
  mc_config cfg;
  cfg.shards = 8;
  for (const auto& proto : protocols::survey(7)) {
    const double exact = oracle(8, comp, proto.lengths);
    const auto est =
        estimate_anonymity_degree(sys, comp, proto.lengths, 30000, 11, cfg);
    EXPECT_NEAR(est.degree, exact, 5.0 * est.std_error + 1e-6)
        << proto.name << " (" << proto.lengths.label() << ")";
  }
}

TEST(Conformance, MonteCarloMatchesBruteForceAcrossCompromisedSizes) {
  const auto d = path_length_distribution::uniform(0, 5);
  const std::vector<std::vector<node_id>> sets{
      {3}, {1, 4}, {0, 3, 6}, {0, 2, 4, 6, 7}};
  for (const auto& comp : sets) {
    const system_params sys{8, static_cast<std::uint32_t>(comp.size())};
    const double exact = oracle(8, comp, d);
    const auto est = estimate_anonymity_degree(sys, comp, d, 30000, 23);
    EXPECT_NEAR(est.degree, exact, 5.0 * est.std_error + 1e-6)
        << comp.size() << " compromised";
  }
}

TEST(Conformance, AnalyticMatchesBruteForceAtC1) {
  // The closed-form C=1 engine against exhaustive enumeration, across
  // every distribution family the factories produce.
  for (std::uint32_t n : {8u, 10u}) {
    const std::vector<path_length_distribution> dists{
        path_length_distribution::fixed(0),
        path_length_distribution::fixed(1),
        path_length_distribution::fixed(3),
        path_length_distribution::fixed(5),
        path_length_distribution::uniform(0, 4),
        path_length_distribution::uniform(1, 7),
        path_length_distribution::geometric(0.7, 1, 7),
        path_length_distribution::poisson(2.5, 7),
        path_length_distribution::two_point(1, 0.3, 6),
    };
    for (const auto& d : dists) {
      const double exact = oracle(n, {n / 2}, d);
      EXPECT_NEAR(anonymity_degree(system_params{n, 1}, d), exact, 1e-9)
          << "N=" << n << " " << d.label();
    }
  }
}

TEST(Conformance, Theorem1MatchesBruteForceAtEveryLength) {
  for (path_length l = 0; l <= 7; ++l) {
    const double exact =
        oracle(8, {3}, path_length_distribution::fixed(l));
    EXPECT_NEAR(theorem1_fixed_length(8, l), exact, 1e-9) << "l=" << l;
  }
}

TEST(Conformance, Theorem3MatchesBruteForceOnUniformFamilies) {
  const std::vector<std::pair<path_length, path_length>> ranges{
      {0, 4}, {1, 7}, {3, 7}, {2, 2}};
  for (const auto& [a, b] : ranges) {
    const double exact =
        oracle(8, {5}, path_length_distribution::uniform(a, b));
    EXPECT_NEAR(theorem3_uniform(8, a, b), exact, 1e-9)
        << "U(" << a << "," << b << ")";
  }
}

TEST(Conformance, Theorem2MatchesBruteForceWhenTruncationIsNegligible) {
  // Theorem 2 assumes the untruncated geometric tail; at pf=0.2 the mass
  // beyond the N-1=9 support cap is pf^9 ~ 5e-7, so the truncated oracle
  // agrees to ~1e-4.
  const double pf = 0.2;
  const double exact =
      oracle(10, {4}, path_length_distribution::geometric(pf, 1, 9));
  EXPECT_NEAR(theorem2_geometric(10, pf), exact, 1e-4);
}

TEST(Conformance, PosteriorEngineMatchesOracleEventByEvent) {
  // The general-C exact engine must reproduce the oracle's posterior for
  // every observation class in the enumerated event space.
  const system_params sys{7, 2};
  const std::vector<node_id> comp{1, 5};
  const auto d = path_length_distribution::uniform(0, 4);
  const brute_force_analyzer bf(sys, comp, d);
  const posterior_engine engine(sys, comp, d);
  ASSERT_GT(bf.events().size(), 10u);
  for (const auto& event : bf.events()) {
    const auto post = engine.sender_posterior(event.obs);
    ASSERT_EQ(post.size(), event.posterior.size());
    for (std::size_t i = 0; i < post.size(); ++i)
      ASSERT_NEAR(post[i], event.posterior[i], 1e-10)
          << "obs=" << event.obs.key() << " node=" << i;
  }
}

TEST(Conformance, CyclicMatchesBruteForceOnCycleFreeDistributions) {
  // With support in {0, 1} a walk cannot revisit anything, so the cyclic
  // and simple path models define the same generative process and the two
  // oracles must agree exactly — for any compromised set.
  const std::vector<path_length_distribution> dists{
      path_length_distribution::fixed(0),
      path_length_distribution::fixed(1),
      path_length_distribution::uniform(0, 1),
      path_length_distribution::two_point(0, 0.3, 1),
      path_length_distribution::two_point(0, 0.7, 1),
  };
  for (std::uint32_t n : {5u, 7u}) {
    for (const std::vector<node_id>& comp :
         std::vector<std::vector<node_id>>{{2}, {0, 3}}) {
      const system_params sys{n, static_cast<std::uint32_t>(comp.size())};
      for (const auto& d : dists) {
        const cyclic_brute_force_analyzer cyc(sys, comp, d);
        const brute_force_analyzer simple(sys, comp, d);
        EXPECT_NEAR(cyc.anonymity_degree(), simple.anonymity_degree(), 1e-12)
            << "N=" << n << " C=" << comp.size() << " " << d.label();
        EXPECT_NEAR(cyc.total_probability(), 1.0, 1e-12);
      }
    }
  }
}

// The small-graph fixture set the topology machinery is pinned on: every
// constructor family, uniform and non-uniform weights, N <= 7.
std::vector<anonpath::net::topology> oracle_graphs() {
  using anonpath::net::topology;
  std::vector<topology> graphs;
  graphs.push_back(topology::complete(7));
  graphs.push_back(topology::ring(7, 1));
  graphs.push_back(topology::ring(7, 2));
  graphs.push_back(topology::tiered(7, 3));
  graphs.push_back(topology::trust_weighted(7, 0.5));
  graphs.push_back(topology::random_regular(6, 3, 11));
  return graphs;
}

TEST(Conformance, GraphOracleOnCliqueMatchesCyclicBruteForce) {
  // The weighted walk on the complete graph IS the paper's "complicated"
  // path model, so the graph oracle must reproduce the cyclic oracle — the
  // bridge that anchors the whole topology subsystem to the existing,
  // independently validated machinery.
  for (std::uint32_t n : {5u, 7u}) {
    const auto topo = net::topology::complete(n);
    for (const std::vector<node_id>& comp :
         std::vector<std::vector<node_id>>{{2}, {0, 3}}) {
      const system_params sys{n, static_cast<std::uint32_t>(comp.size())};
      for (const auto& d : {path_length_distribution::fixed(3),
                            path_length_distribution::uniform(0, 4),
                            path_length_distribution::geometric(0.7, 1, 4)}) {
        const net::graph_oracle walk(sys, comp, d, topo);
        const cyclic_brute_force_analyzer cyc(sys, comp, d);
        EXPECT_NEAR(walk.anonymity_degree(), cyc.anonymity_degree(), 1e-12)
            << "N=" << n << " C=" << comp.size() << " " << d.label();
        EXPECT_NEAR(walk.total_probability(), 1.0, 1e-12);
        EXPECT_EQ(walk.events().size(), cyc.events().size());
      }
    }
  }
}

TEST(Conformance, TopologyEngineMatchesGraphOracleEventByEvent) {
  // The restricted-path posterior engine against exhaustive enumeration:
  // every observation class of every fixture graph, posterior pinned
  // exactly. This is the graph-oracle conformance layer of the topology
  // subsystem.
  for (const auto& topo : oracle_graphs()) {
    const std::uint32_t n = topo.node_count();
    const std::vector<node_id> comp{1, n - 2};
    const system_params sys{n, 2};
    for (const auto& d : {path_length_distribution::uniform(0, 4),
                          path_length_distribution::fixed(3),
                          path_length_distribution::two_point(1, 0.3, 4)}) {
      const net::graph_oracle oracle(sys, comp, d, topo);
      const net::topology_posterior_engine engine(sys, comp, d, topo);
      ASSERT_GT(oracle.events().size(), 5u) << topo.config().label();
      for (const auto& event : oracle.events()) {
        const auto post = engine.sender_posterior(event.obs);
        ASSERT_EQ(post.size(), event.posterior.size());
        for (std::size_t i = 0; i < post.size(); ++i)
          ASSERT_NEAR(post[i], event.posterior[i], 1e-10)
              << topo.config().label() << " " << d.label()
              << " obs=" << event.obs.key() << " node=" << i;
      }
    }
  }
}

TEST(Conformance, TopologyEngineMatchesOracleWithHonestReceiver) {
  // receiver_observed == false (partial coverage with an honest receiver)
  // marginalizes over the open walk tail; pin that path against the oracle
  // by erasing the receiver report from each enumerated event and checking
  // the engine against the re-aggregated event space.
  for (const auto& topo : oracle_graphs()) {
    const std::uint32_t n = topo.node_count();
    const std::vector<node_id> comp{1, n - 2};
    const system_params sys{n, 2};
    const auto d = path_length_distribution::uniform(0, 4);
    const net::graph_oracle oracle(sys, comp, d, topo);
    const net::topology_posterior_engine engine(sys, comp, d, topo);

    // Group the full event space by the receiver-blind observation.
    struct blind_bucket {
      observation obs;
      std::vector<double> mass;
    };
    std::map<std::string, blind_bucket> blind;
    for (const auto& event : oracle.events()) {
      if (event.obs.origin) continue;  // origin events are unaffected
      observation obs = event.obs;
      obs.receiver_observed = false;
      obs.receiver_predecessor = 0;
      if (obs.reports.empty()) continue;  // nothing captured: never scored
      auto [it, inserted] = blind.try_emplace(obs.key());
      if (inserted) {
        it->second.obs = obs;
        it->second.mass.assign(n, 0.0);
      }
      for (node_id s = 0; s < n; ++s)
        it->second.mass[s] += event.probability * event.posterior[s];
    }
    ASSERT_GT(blind.size(), 3u) << topo.config().label();
    for (const auto& [key, bucket] : blind) {
      double total = 0.0;
      for (double m : bucket.mass) total += m;
      const auto post = engine.sender_posterior(bucket.obs);
      for (node_id s = 0; s < n; ++s)
        ASSERT_NEAR(post[s], bucket.mass[s] / total, 1e-10)
            << topo.config().label() << " obs=" << key << " node=" << s;
    }
  }
}

TEST(Conformance, TopologyCompleteRecapturesPreTopologyGoldenTrace) {
  // Acceptance pin: tests/golden/trace_v1.trace was captured by the
  // pre-topology build, so re-running its embedded config today — with
  // the complete topology and zero churn spelled out explicitly — must
  // reproduce the identical byte stream: same routing draws, same event
  // order, same ground truth, and no extension lines. Any perturbation of
  // the clique code path (an extra rng draw, a sampler change, churn
  // touching a generator) breaks this.
  const std::string path =
      std::string(ANONPATH_TEST_DATA_DIR) + "/golden/trace_v1.trace";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream buffered;
  buffered << in.rdbuf();

  std::istringstream is(buffered.str());
  sim::sim_config cfg = sim::read_trace(is).config;
  cfg.topology = net::topology_config{};  // complete, spelled out
  cfg.faults.churn = net::churn_config{};        // rate 0, spelled out

  std::ostringstream recaptured;
  sim::write_trace(sim::capture_trace(cfg), recaptured);
  EXPECT_EQ(recaptured.str(), buffered.str())
      << "complete-topology runs are no longer bit-identical to the "
         "pre-topology simulator";
}

TEST(Conformance, CyclicDivergesOnceCyclesArePossible) {
  // Guard against the previous test passing vacuously: at support {2} the
  // models genuinely differ.
  const system_params sys{6, 1};
  const auto d = path_length_distribution::fixed(2);
  EXPECT_GT(
      std::fabs(cyclic_brute_force_analyzer(sys, {1}, d).anonymity_degree() -
                brute_force_analyzer(sys, {1}, d).anonymity_degree()),
      1e-6);
}

}  // namespace
}  // namespace anonpath
