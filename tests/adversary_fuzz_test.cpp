// Fuzz/property layer for the adversary models' assembly paths: seeded
// random report streams with out-of-order capture times, duplicate relay
// reports and incomplete messages must never crash, corrupt state, or
// produce unscreened unexplainable posteriors; and the partial-coverage
// model must obey its core structural invariant — observed hop reporters
// form exactly the order-preserving compromised subsequence of the
// ground-truth route.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/anonymity/observation.hpp"
#include "src/anonymity/path_sampler.hpp"
#include "src/anonymity/posterior.hpp"
#include "src/sim/adversary.hpp"
#include "src/stats/rng.hpp"

namespace anonpath::sim {
namespace {

std::vector<bool> random_flags(std::uint32_t n, double f, stats::rng& gen) {
  std::vector<bool> flags(n, false);
  for (std::uint32_t i = 0; i < n; ++i) flags[i] = gen.next_bernoulli(f);
  return flags;
}

/// Feeds the model every report the threat model grants for `r` under
/// `flags`, at the given per-position capture times (times.size() >=
/// r.length()); returns whether the receiver report was delivered too.
void feed_route(adversary_model& model, std::uint64_t msg, const route& r,
                const std::vector<bool>& flags,
                const std::vector<double>& times,
                const std::vector<std::size_t>& order, bool deliver) {
  if (flags[r.sender]) model.note_origin(msg, r.sender);
  const auto l = r.length();
  for (const std::size_t i : order) {
    if (i >= l) continue;
    const node_id here = r.hops[i];
    if (!flags[here]) continue;
    const node_id pred = i == 0 ? r.sender : r.hops[i - 1];
    const node_id succ = i + 1 == l ? receiver_node : r.hops[i + 1];
    model.note_relay(msg, times[i], here, pred, succ);
  }
  if (deliver)
    model.note_receipt(msg, times.empty() ? 1.0 : times.back() + 1.0,
                       l == 0 ? r.sender : r.hops[l - 1]);
}

TEST(AdversaryFuzz, OutOfOrderCaptureTimesStillAssembleInTimeOrder) {
  // Reports filed in shuffled order with monotone per-position times must
  // assemble to exactly observe(route, flags) — the historical contract.
  stats::rng gen(101);
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(gen.next_below(14));
    const auto flags = random_flags(n, 0.4, gen);
    const auto lengths = path_length_distribution::uniform(
        0, std::min<path_length>(8, n - 1));
    const route r = sample_route(n, lengths, path_model::simple, gen);

    full_coalition_model model(flags);
    std::vector<double> times(r.length());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = 0.010 * static_cast<double>(i + 1);
    std::vector<std::size_t> order(r.length());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Deterministic shuffle via partial Fisher-Yates.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[gen.next_below(i)]);

    feed_route(model, 1, r, flags, times, order, true);
    ASSERT_TRUE(model.complete(1));
    EXPECT_EQ(model.assemble(1), observe(r, flags)) << "iteration " << iter;
  }
}

TEST(AdversaryFuzz, DuplicateAndIncompleteStreamsNeverCrash) {
  // Arbitrary within-contract call sequences: duplicates of the same
  // report, messages that never complete, ties in capture time. assemble()
  // must throw for incomplete ids, return for complete ones, and the
  // fragment assembler must either produce fragments or reject with
  // invalid_argument — nothing else.
  stats::rng gen(202);
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(gen.next_below(10));
    const auto flags = random_flags(n, 0.5, gen);
    std::vector<node_id> compromised;
    for (node_id i = 0; i < n; ++i)
      if (flags[i]) compromised.push_back(i);
    if (compromised.empty()) continue;

    full_coalition_model model(flags);
    const std::uint32_t calls = 1 + static_cast<std::uint32_t>(gen.next_below(12));
    for (std::uint32_t k = 0; k < calls; ++k) {
      const std::uint64_t msg = gen.next_below(3);
      const auto roll = gen.next_below(10);
      const node_id reporter =
          compromised[gen.next_below(compromised.size())];
      const auto any_node = [&] {
        // Sometimes out-of-range garbage or the receiver sentinel.
        const auto x = gen.next_below(n + 2);
        return x == n ? receiver_node : static_cast<node_id>(x);
      };
      if (roll < 6) {
        model.note_relay(msg, gen.next_double(), reporter, any_node(),
                         any_node());
        if (roll == 0)  // exact duplicate, same capture time
          model.note_relay(msg, gen.next_double(), reporter, any_node(),
                           any_node());
      } else if (roll < 8) {
        model.note_origin(msg, reporter);
      } else {
        model.note_receipt(msg, gen.next_double(), any_node());
      }
    }

    for (std::uint64_t msg = 0; msg < 3; ++msg) {
      if (!model.complete(msg)) {
        EXPECT_THROW((void)model.assemble(msg), std::out_of_range);
        continue;
      }
      const observation obs = model.assemble(msg);
      // Time-sorted, and every capture survives (duplicates included).
      try {
        const auto fragments = assemble_fragments(obs, flags);
        // Chained fragments keep every report's reporter.
        std::size_t reporters = 0;
        for (const auto& f : fragments) {
          for (node_id x : f.nodes)
            if (x != receiver_node && x < n && flags[x]) ++reporters;
        }
        if (!obs.reports.empty()) EXPECT_GE(reporters, 1u);
      } catch (const std::invalid_argument&) {
        // Inconsistent streams are rejected, not mis-assembled.
      }
    }
  }
}

TEST(AdversaryFuzz, PartialCoverageObservedHopsAreOrderPreservingSubsequence) {
  stats::rng gen(303);
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint32_t n = 8 + static_cast<std::uint32_t>(gen.next_below(20));
    const double f = 0.1 + 0.8 * gen.next_double();
    const auto flags = random_flags(n, f, gen);
    const bool receiver = gen.next_bernoulli(0.5);
    const auto lengths = path_length_distribution::uniform(
        0, std::min<path_length>(9, n - 1));
    const route r = sample_route(n, lengths, path_model::simple, gen);

    partial_coverage_model model(flags, receiver);
    std::vector<double> times(r.length());
    for (std::size_t i = 0; i < times.size(); ++i)
      times[i] = 0.010 * static_cast<double>(i + 1);
    std::vector<std::size_t> order(r.length());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    feed_route(model, 1, r, flags, times, order, true);

    // The invariant's reference: the compromised subsequence of the route.
    std::vector<node_id> expected;
    for (node_id hop : r.hops)
      if (flags[hop]) expected.push_back(hop);

    const bool observable =
        receiver || flags[r.sender] || !expected.empty();
    ASSERT_EQ(model.complete(1), observable);
    if (!observable) continue;

    const observation obs = model.assemble(1);
    std::vector<node_id> reported;
    for (const auto& rep : obs.reports) reported.push_back(rep.reporter);
    EXPECT_EQ(reported, expected)
        << "iteration " << iter
        << ": reports must be the route's compromised subsequence, in order";
    EXPECT_EQ(obs.receiver_observed, receiver);
    if (receiver) {
      EXPECT_EQ(obs.receiver_predecessor,
                r.length() == 0 ? r.sender : r.hops[r.length() - 1]);
    }

    // And the posterior engine accepts it: the true sender always keeps
    // positive likelihood under the drawn coalition.
    std::vector<node_id> ids;
    for (node_id i = 0; i < n; ++i)
      if (flags[i]) ids.push_back(i);
    const posterior_engine engine(
        {n, static_cast<std::uint32_t>(ids.size())}, ids, lengths);
    EXPECT_TRUE(engine.explainable(obs));
    EXPECT_TRUE(std::isfinite(engine.log_likelihood(obs, r.sender)))
        << "iteration " << iter;
    const auto post = engine.sender_posterior(obs);
    EXPECT_GT(post[r.sender], 0.0);
    // Fast path and reference agree on the new observation shapes too.
    const auto ref = engine.sender_posterior_reference(obs);
    for (std::size_t i = 0; i < post.size(); ++i)
      EXPECT_NEAR(post[i], ref[i], 1e-12);
  }
}

TEST(AdversaryFuzz, TimingCorrelatorToleratesArbitraryStreams) {
  // Random capture soups: linking must stay deterministic, never crash,
  // and every produced observation must be screenable by explainable().
  stats::rng gen(404);
  for (int iter = 0; iter < 150; ++iter) {
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(gen.next_below(10));
    const auto flags = random_flags(n, 0.6, gen);
    std::vector<node_id> compromised;
    for (node_id i = 0; i < n; ++i)
      if (flags[i]) compromised.push_back(i);
    if (compromised.empty()) continue;

    const latency_params lat{0.010, 0.004, 0.002};
    timing_correlator_model model(flags, lat);
    const std::uint32_t captures =
        static_cast<std::uint32_t>(gen.next_below(20));
    for (std::uint32_t k = 0; k < captures; ++k) {
      const node_id reporter =
          compromised[gen.next_below(compromised.size())];
      const auto succ_roll = gen.next_below(n + 1);
      model.note_relay(gen.next_below(5), gen.next_double() * 0.2, reporter,
                       static_cast<node_id>(gen.next_below(n)),
                       succ_roll == n ? receiver_node
                                      : static_cast<node_id>(succ_roll));
    }
    const std::uint32_t receipts =
        1 + static_cast<std::uint32_t>(gen.next_below(5));
    for (std::uint32_t k = 0; k < receipts; ++k)
      model.note_receipt(k, gen.next_double() * 0.25,
                         static_cast<node_id>(gen.next_below(n)));

    const auto observed = model.observed_messages();
    EXPECT_EQ(observed.size(), receipts);
    const posterior_engine engine(
        {n, static_cast<std::uint32_t>(compromised.size())}, compromised,
        path_length_distribution::uniform(0, std::min<path_length>(6, n - 1)));
    for (const std::uint64_t msg : observed) {
      const observation obs = model.assemble(msg);
      EXPECT_TRUE(obs.gapped);
      if (engine.explainable(obs)) {
        const auto post = engine.sender_posterior(obs);
        double total = 0.0;
        for (double p : post) total += p;
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace anonpath::sim
