// Conformance layer for net::approx_topology_posterior: with full support
// the restricted-path DP must be bit-identical to topology_posterior_engine
// and match the exhaustive graph_oracle event-by-event on the N <= 10
// fixtures; proper support masks must prune exactly the hypotheses whose
// walks need an excluded node at a non-sender position.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/anonymity/length_distribution.hpp"
#include "src/net/approx_posterior.hpp"
#include "src/net/graph_oracle.hpp"
#include "src/net/route_plan.hpp"
#include "src/net/topology.hpp"
#include "src/net/topology_posterior.hpp"

namespace anonpath::net {
namespace {

std::vector<topology> fixture_graphs() {
  std::vector<topology> graphs;
  graphs.push_back(topology::complete(7));
  graphs.push_back(topology::ring(7, 1));
  graphs.push_back(topology::ring(7, 2));
  graphs.push_back(topology::tiered(7, 3));
  graphs.push_back(topology::trust_weighted(6, 0.5));
  graphs.push_back(topology::random_regular(8, 3, 11));
  return graphs;
}

TEST(ApproxPosterior, FullSupportIsBitIdenticalToExactEngine) {
  // The full-support ctor and an explicit all-true mask both leave the DP
  // arithmetic untouched, so the posteriors must match the exact engine
  // double for double — not approximately.
  for (const auto& topo : fixture_graphs()) {
    const std::uint32_t n = topo.node_count();
    const std::vector<node_id> comp{1, n - 2};
    const system_params sys{n, 2};
    const auto d = path_length_distribution::uniform(0, 4);
    const graph_oracle oracle(sys, comp, d, topo);
    const topology_posterior_engine exact(sys, comp, d, topo);
    const approx_topology_posterior full(sys, comp, d, topo);
    const approx_topology_posterior masked(sys, comp, d, topo,
                                           std::vector<bool>(n, true));
    EXPECT_EQ(full.support_size(), n);
    EXPECT_EQ(masked.support_size(), n);
    ASSERT_GT(oracle.events().size(), 5u);
    for (const auto& event : oracle.events()) {
      const auto want = exact.sender_posterior(event.obs);
      const auto got_full = full.sender_posterior(event.obs);
      const auto got_masked = masked.sender_posterior(event.obs);
      ASSERT_EQ(got_full.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got_full[i], want[i]) << topo.config().label();
        EXPECT_EQ(got_masked[i], want[i]) << topo.config().label();
      }
    }
  }
}

TEST(ApproxPosterior, FullSupportMatchesGraphOracle) {
  // Transitively pinned through the exact engine already, but the direct
  // pin against exhaustive enumeration is the contract the ISSUE names.
  for (const auto& topo : fixture_graphs()) {
    const std::uint32_t n = topo.node_count();
    const std::vector<node_id> comp{1, n - 2};
    const system_params sys{n, 2};
    const auto d = path_length_distribution::fixed(3);
    const graph_oracle oracle(sys, comp, d, topo);
    const approx_topology_posterior approx(sys, comp, d, topo);
    for (const auto& event : oracle.events()) {
      const auto post = approx.sender_posterior(event.obs);
      ASSERT_EQ(post.size(), event.posterior.size());
      for (std::size_t i = 0; i < post.size(); ++i)
        EXPECT_NEAR(post[i], event.posterior[i], 1e-10)
            << topo.config().label() << " obs=" << event.obs.key();
    }
  }
}

TEST(ApproxPosterior, KpathSupportWithUniformExitLawIsFull) {
  // The sim scoring path: under the uniform exit law every node is an
  // exit, the planned-path union spans the graph, and the routing-config
  // ctor degenerates to the exact engine.
  const auto topo = topology::ring(7, 2);
  const std::vector<node_id> comp{2};
  const system_params sys{7, 1};
  const auto d = path_length_distribution::uniform(1, 6);
  routing_config routing;
  routing.kind = route_select::kpaths;
  routing.k = 2;
  std::vector<node_id> all;
  for (node_id v = 0; v < 7; ++v) all.push_back(v);
  const approx_topology_posterior via_routing(sys, comp, d, topo, routing,
                                              all, all);
  EXPECT_EQ(via_routing.support_size(), 7u);
  const topology_posterior_engine exact(sys, comp, d, topo);
  const graph_oracle oracle(sys, comp, d, topo);
  for (const auto& event : oracle.events()) {
    const auto want = exact.sender_posterior(event.obs);
    const auto got = via_routing.sender_posterior(event.obs);
    for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

TEST(ApproxPosterior, PrunedGapEndpointForcesTheSenderHypothesis) {
  // Ring(7, 1) with compromised {2} and node 1 pruned from the support.
  // An observation whose first report is "2 heard from 1" makes node 1 a
  // gap endpoint: every sender hypothesis must route its opening gap
  // through 1, which the mask forbids at any non-sender position — except
  // the hypothesis S = 1 itself, whose gap has length zero. Whenever the
  // masked posterior exists at all, it is the point mass on 1.
  const auto topo = topology::ring(7, 1);
  const std::vector<node_id> comp{2};
  const system_params sys{7, 1};
  const auto d = path_length_distribution::uniform(0, 4);
  const graph_oracle oracle(sys, comp, d, topo);
  std::vector<bool> support(7, true);
  support[1] = false;
  const approx_topology_posterior pruned(sys, comp, d, topo, support);
  EXPECT_EQ(pruned.support_size(), 6u);
  const topology_posterior_engine exact(sys, comp, d, topo);
  int pinned = 0;
  bool mask_bites = false;
  std::vector<double> post;
  for (const auto& event : oracle.events()) {
    const auto& obs = event.obs;
    if (obs.origin || obs.reports.empty()) continue;
    if (obs.reports.front().reporter != 2 ||
        obs.reports.front().predecessor != 1)
      continue;
    if (!pruned.try_sender_posterior(obs, post)) continue;
    ASSERT_EQ(post.size(), 7u);
    EXPECT_NEAR(post[1], 1.0, 1e-12) << "obs=" << obs.key();
    // On at least one such event the unmasked engine spreads mass over
    // other senders — the concentration really is the mask's doing, not a
    // property the event already had.
    if (exact.sender_posterior(obs)[1] < 1.0 - 1e-9) mask_bites = true;
    ++pinned;
  }
  EXPECT_GT(pinned, 0) << "fixture produced no first-report-from-1 events";
  EXPECT_TRUE(mask_bites);
}

TEST(ApproxPosterior, MaskedPosteriorsStayNormalizedOrFailLoudly) {
  // Over the whole oracle event space, a proper support mask either yields
  // a normalized posterior or reports failure through try_sender_posterior
  // — never silent garbage.
  const auto topo = topology::random_regular(8, 3, 11);
  const std::vector<node_id> comp{1, 6};
  const system_params sys{8, 2};
  const auto d = path_length_distribution::uniform(0, 4);
  const graph_oracle oracle(sys, comp, d, topo);
  std::vector<bool> support(8, true);
  support[3] = false;
  support[5] = false;
  const approx_topology_posterior pruned(sys, comp, d, topo, support);
  EXPECT_EQ(pruned.support_size(), 6u);
  int succeeded = 0, failed = 0;
  std::vector<double> post;
  for (const auto& event : oracle.events()) {
    if (pruned.try_sender_posterior(event.obs, post)) {
      double total = 0.0;
      for (double p : post) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
      ++succeeded;
    } else {
      for (double p : post) EXPECT_EQ(p, 0.0);
      ++failed;
    }
  }
  EXPECT_GT(succeeded, 0);
  // The mask must actually bite somewhere on this event space.
  EXPECT_GT(failed, 0) << "pruning two interior nodes rejected nothing";
}

TEST(ApproxPosterior, SupportAccessors) {
  const auto topo = topology::ring(6, 1);
  const system_params sys{6, 1};
  const auto d = path_length_distribution::fixed(2);
  std::vector<bool> support(6, true);
  support[4] = false;
  const approx_topology_posterior approx(sys, {0}, d, topo, support);
  EXPECT_EQ(approx.support_size(), 5u);
  ASSERT_EQ(approx.support().size(), 6u);
  EXPECT_FALSE(approx.support()[4]);
  EXPECT_TRUE(approx.support()[3]);
  EXPECT_EQ(approx.graph().node_count(), 6u);
}

}  // namespace
}  // namespace anonpath::net
