// Failure injection: lossy links must degrade delivery but never corrupt
// the adversary pipeline or the metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/simulator.hpp"
#include "src/stats/contract.hpp"

namespace anonpath::sim {
namespace {

sim_config lossy_config(double drop) {
  sim_config cfg;
  cfg.sys = {20, 2};
  cfg.compromised = {3, 11};
  cfg.lengths = path_length_distribution::uniform(1, 6);
  cfg.message_count = 2000;
  cfg.faults.drop_probability = drop;
  cfg.seed = 71;
  return cfg;
}

TEST(FailureInjection, ZeroDropDeliversEverything) {
  const auto r = run_simulation(lossy_config(0.0));
  EXPECT_EQ(r.delivered, 2000u);
}

TEST(FailureInjection, DeliveryRateTracksPerLinkLoss) {
  // Mean path length 3.5 => ~4.5 transmissions per message; with per-link
  // loss p the delivery probability is ~(1-p)^(hops+1).
  const auto r = run_simulation(lossy_config(0.05));
  const double rate =
      static_cast<double>(r.delivered) / static_cast<double>(r.submitted);
  // Expected ~0.95^4.5 ~ 0.79; generous band for workload variation.
  EXPECT_GT(rate, 0.70);
  EXPECT_LT(rate, 0.88);
}

TEST(FailureInjection, HeavierLossDeliversLess) {
  const auto light = run_simulation(lossy_config(0.02));
  const auto heavy = run_simulation(lossy_config(0.20));
  EXPECT_GT(light.delivered, heavy.delivered);
  EXPECT_GT(heavy.delivered, 0u);
}

TEST(FailureInjection, EntropyPipelineSurvivesLoss) {
  // Only delivered messages are scored; the adversary maths stays sound.
  const auto r = run_simulation(lossy_config(0.10));
  EXPECT_TRUE(std::isfinite(r.empirical_entropy_bits));
  EXPECT_GT(r.empirical_entropy_bits, 3.0);
  EXPECT_LT(r.empirical_entropy_bits, std::log2(20.0));
}

TEST(FailureInjection, RejectsInvalidProbability) {
  auto cfg = lossy_config(1.0);
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
  cfg = lossy_config(-0.1);
  EXPECT_THROW((void)run_simulation(cfg), contract_violation);
}

}  // namespace
}  // namespace anonpath::sim
